//! Criterion benchmarks for the analytic quality model: reject-rate
//! evaluation, required-coverage solving and n0 estimation.

use criterion::{criterion_group, criterion_main, Criterion};
use lsiq_core::chip_test::ChipTestTable;
use lsiq_core::coverage_requirement::required_fault_coverage;
use lsiq_core::estimate::N0Estimator;
use lsiq_core::params::{FaultCoverage, ModelParams, RejectRate, Yield};
use lsiq_core::reject::field_reject_rate;
use std::hint::black_box;

fn bench_model_eval(c: &mut Criterion) {
    let params = ModelParams::new(Yield::new(0.07).expect("valid"), 8.0).expect("valid");
    let coverage = FaultCoverage::new(0.8).expect("valid");
    c.bench_function("reject_rate_eq8", |b| {
        b.iter(|| field_reject_rate(black_box(&params), black_box(coverage)))
    });

    let target = RejectRate::new(0.001).expect("valid");
    c.bench_function("required_coverage_solve", |b| {
        b.iter(|| required_fault_coverage(black_box(&params), black_box(target)).expect("solves"))
    });

    let table = ChipTestTable::paper_table_1();
    let chip_yield = Yield::new(0.07).expect("valid");
    c.bench_function("n0_estimation_table1", |b| {
        b.iter(|| {
            N0Estimator::default()
                .estimate(black_box(&table), black_box(chip_yield))
                .expect("estimates")
        })
    });
}

criterion_group!(benches, bench_model_eval);
criterion_main!(benches);
