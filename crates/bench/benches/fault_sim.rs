//! Criterion benchmarks comparing the five fault-simulation algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsiq_exec::LaneWidth;
use lsiq_fault::deductive::DeductiveSimulator;
use lsiq_fault::incremental::IncrementalSimulator;
use lsiq_fault::parallel::ParallelSimulator;
use lsiq_fault::ppsfp::PpsfpSimulator;
use lsiq_fault::serial::SerialSimulator;
use lsiq_fault::simulator::FaultSimulator;
use lsiq_fault::universe::FaultUniverse;
use lsiq_netlist::generator::{random_circuit, RandomCircuitConfig};
use lsiq_netlist::library;
use lsiq_sim::cache::GoodMachineCache;
use lsiq_sim::pattern::{Pattern, PatternSet};
use lsiq_stats::rng::{Rng, Xoshiro256StarStar};
use std::hint::black_box;

fn random_patterns(width: usize, count: usize, seed: u64) -> PatternSet {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    (0..count)
        .map(|_| Pattern::from_bits((0..width).map(|_| rng.next_bool(0.5))))
        .collect()
}

fn bench_fault_sim(c: &mut Criterion) {
    let circuit = library::alu4();
    let universe = FaultUniverse::full(&circuit);
    let patterns = random_patterns(circuit.primary_inputs().len(), 64, 7);
    let mut group = c.benchmark_group("fault_sim_alu4_64_patterns");
    group.bench_with_input(BenchmarkId::new("serial", universe.len()), &(), |b, _| {
        b.iter(|| SerialSimulator::new(&circuit).run(black_box(&universe), black_box(&patterns)))
    });
    group.bench_with_input(BenchmarkId::new("ppsfp", universe.len()), &(), |b, _| {
        b.iter(|| PpsfpSimulator::new(&circuit).run(black_box(&universe), black_box(&patterns)))
    });
    group.bench_with_input(
        BenchmarkId::new("deductive", universe.len()),
        &(),
        |b, _| {
            b.iter(|| {
                DeductiveSimulator::new(&circuit).run(black_box(&universe), black_box(&patterns))
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("deductive_uncollapsed", universe.len()),
        &(),
        |b, _| {
            b.iter(|| {
                DeductiveSimulator::new(&circuit)
                    .with_collapsing(false)
                    .run(black_box(&universe), black_box(&patterns))
            })
        },
    );
    group.bench_with_input(BenchmarkId::new("parallel", universe.len()), &(), |b, _| {
        b.iter(|| ParallelSimulator::new(&circuit).run(black_box(&universe), black_box(&patterns)))
    });
    group.bench_with_input(
        BenchmarkId::new("incremental", universe.len()),
        &(),
        |b, _| {
            b.iter(|| {
                IncrementalSimulator::new(&circuit).run(black_box(&universe), black_box(&patterns))
            })
        },
    );
    group.finish();
}

/// The same engines on a larger random circuit: the regime the ROADMAP's
/// "order-of-magnitude win" refers to (the serial engine is omitted — it is
/// two orders of magnitude off the pace here).
fn bench_fault_sim_large(c: &mut Criterion) {
    let circuit = random_circuit(&RandomCircuitConfig {
        inputs: 32,
        gates: 1200,
        seed: 1981,
        ..RandomCircuitConfig::default()
    });
    let universe = FaultUniverse::full(&circuit);
    let patterns = random_patterns(circuit.primary_inputs().len(), 128, 11);
    let mut group = c.benchmark_group("fault_sim_random1200_128_patterns");
    group.bench_with_input(BenchmarkId::new("ppsfp", universe.len()), &(), |b, _| {
        b.iter(|| PpsfpSimulator::new(&circuit).run(black_box(&universe), black_box(&patterns)))
    });
    group.bench_with_input(
        BenchmarkId::new("deductive", universe.len()),
        &(),
        |b, _| {
            b.iter(|| {
                DeductiveSimulator::new(&circuit).run(black_box(&universe), black_box(&patterns))
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("deductive_uncollapsed", universe.len()),
        &(),
        |b, _| {
            b.iter(|| {
                DeductiveSimulator::new(&circuit)
                    .with_collapsing(false)
                    .run(black_box(&universe), black_box(&patterns))
            })
        },
    );
    group.bench_with_input(BenchmarkId::new("parallel", universe.len()), &(), |b, _| {
        b.iter(|| ParallelSimulator::new(&circuit).run(black_box(&universe), black_box(&patterns)))
    });
    group.bench_with_input(
        BenchmarkId::new("incremental", universe.len()),
        &(),
        |b, _| {
            b.iter(|| {
                IncrementalSimulator::new(&circuit).run(black_box(&universe), black_box(&patterns))
            })
        },
    );
    group.finish();
}

/// The ISCAS-scale regime the incremental engine exists for: a 50 000-gate
/// generated circuit over sixteen 64-pattern blocks, where re-evaluating
/// each fault's disturbed cone beats rebuilding per-signal fault lists over
/// the whole netlist.  The multi-block budget matters: fault dropping makes
/// the incremental engine's later blocks touch only still-undetected
/// faults, so its cost is nearly flat in block count (~2 s fixed + a small
/// per-block tail) while the deductive engine pays a full list pass per
/// pattern — measured ~4× apart at this size (3.0 s vs 12.2 s
/// single-threaded).  The packed-parallel engine is omitted: it is two
/// orders of magnitude off the pace per core at this scale, and lives in
/// the smaller groups above.
fn bench_fault_sim_iscas_scale(c: &mut Criterion) {
    let circuit = random_circuit(&RandomCircuitConfig::industrial(50_000, 1981));
    let universe = FaultUniverse::full(&circuit);
    let patterns = random_patterns(circuit.primary_inputs().len(), 1024, 13);
    let mut group = c.benchmark_group("fault_sim_industrial50k_1024_patterns");
    group.bench_with_input(
        BenchmarkId::new("deductive", universe.len()),
        &(),
        |b, _| {
            b.iter(|| {
                DeductiveSimulator::new(&circuit).run(black_box(&universe), black_box(&patterns))
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("incremental", universe.len()),
        &(),
        |b, _| {
            b.iter(|| {
                IncrementalSimulator::new(&circuit).run(black_box(&universe), black_box(&patterns))
            })
        },
    );
    group.finish();
}

/// Lane-width scaling of the packed engines: the same 1024-pattern
/// workload at every [`LaneWidth`], single-threaded (PPSFP) and sharded
/// (parallel), plus the widest lane with a warm [`GoodMachineCache`].
/// Results are byte-identical across all entries — this group measures
/// pure throughput, and is where the `×8` lanes earn their keep (wide
/// chunks autovectorize and amortize the per-chunk walk over 512 patterns
/// instead of 64).
fn bench_fault_sim_lanes(c: &mut Criterion) {
    let circuit = random_circuit(&RandomCircuitConfig {
        inputs: 24,
        gates: 600,
        seed: 8,
        ..RandomCircuitConfig::default()
    });
    let universe = FaultUniverse::full(&circuit);
    let patterns = random_patterns(circuit.primary_inputs().len(), 1024, 17);
    let mut group = c.benchmark_group("fault_sim_lanes_1024_patterns");
    for lanes in LaneWidth::EXPLICIT {
        group.bench_with_input(BenchmarkId::new("ppsfp", lanes), &(), |b, _| {
            b.iter(|| {
                PpsfpSimulator::new(&circuit)
                    .with_lanes(lanes)
                    .run(black_box(&universe), black_box(&patterns))
            })
        });
    }
    for lanes in LaneWidth::EXPLICIT {
        group.bench_with_input(BenchmarkId::new("parallel", lanes), &(), |b, _| {
            b.iter(|| {
                ParallelSimulator::new(&circuit)
                    .with_lanes(lanes)
                    .run(black_box(&universe), black_box(&patterns))
            })
        });
    }
    // A warm cache removes the good-machine pass entirely (every iteration
    // after the first replays it), leaving pure faulty-machine work.
    let cache = GoodMachineCache::new();
    group.bench_function("ppsfp/8_cached", |b| {
        b.iter(|| {
            PpsfpSimulator::new(&circuit)
                .with_lanes(LaneWidth::X8)
                .with_cache(&cache)
                .run(black_box(&universe), black_box(&patterns))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fault_sim,
    bench_fault_sim_large,
    bench_fault_sim_iscas_scale,
    bench_fault_sim_lanes
);
criterion_main!(benches);
