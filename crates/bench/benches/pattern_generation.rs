//! Criterion benchmarks for pattern generation: random, LFSR and PODEM.

use criterion::{criterion_group, criterion_main, Criterion};
use lsiq_fault::universe::FaultUniverse;
use lsiq_netlist::library;
use lsiq_tpg::lfsr::Lfsr;
use lsiq_tpg::podem::Podem;
use lsiq_tpg::random::RandomPatternGenerator;
use std::hint::black_box;

fn bench_pattern_generation(c: &mut Criterion) {
    let circuit = library::alu4();
    c.bench_function("random_patterns_256", |b| {
        b.iter(|| RandomPatternGenerator::new(black_box(&circuit), 7).generate(256))
    });
    c.bench_function("lfsr_patterns_256", |b| {
        b.iter(|| Lfsr::new(black_box(circuit.primary_inputs().len()), 0xACE1).generate(256))
    });

    let universe = FaultUniverse::full(&circuit);
    let podem = Podem::new(&circuit);
    c.bench_function("podem_full_alu4_universe", |b| {
        b.iter(|| {
            let mut tests = 0usize;
            for fault in black_box(&universe) {
                if podem.generate_test(fault).pattern().is_some() {
                    tests += 1;
                }
            }
            tests
        })
    });
}

criterion_group!(benches, bench_pattern_generation);
criterion_main!(benches);
