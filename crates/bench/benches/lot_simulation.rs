//! Criterion benchmarks for the production-line Monte-Carlo: lot generation
//! (model and physical pipelines), wafer testing, and the multi-threaded
//! pipeline against the serial path on identical inputs.

use criterion::{criterion_group, criterion_main, Criterion};
use lsiq_fault::dictionary::FaultDictionary;
use lsiq_fault::parallel::ParallelSimulator;
use lsiq_fault::simulator::FaultSimulator;
use lsiq_fault::universe::FaultUniverse;
use lsiq_manufacturing::defect::DefectModel;
use lsiq_manufacturing::lot::{ChipLot, ModelLotConfig, PhysicalLotConfig};
use lsiq_manufacturing::pipeline::ParallelLotRunner;
use lsiq_manufacturing::tester::WaferTester;
use lsiq_netlist::library;
use lsiq_sim::pattern::{Pattern, PatternSet};
use std::hint::black_box;

fn bench_lot_simulation(c: &mut Criterion) {
    let model_config = ModelLotConfig {
        chips: 1_000,
        yield_fraction: 0.07,
        n0: 8.0,
        fault_universe_size: 10_000,
        seed: 1,
    };
    c.bench_function("model_lot_1000_chips", |b| {
        b.iter(|| ChipLot::from_model(black_box(&model_config)))
    });

    let physical_config = PhysicalLotConfig {
        chips: 1_000,
        defect_model: DefectModel::for_target_yield(0.07, 1.0).expect("valid"),
        extra_faults_per_defect: 2.0,
        fault_universe_size: 10_000,
        seed: 1,
    };
    c.bench_function("physical_lot_1000_chips", |b| {
        b.iter(|| ChipLot::from_physical(black_box(&physical_config)))
    });

    // Wafer test of a lot against a precomputed dictionary.
    let circuit = library::alu4();
    let universe = FaultUniverse::full(&circuit);
    let patterns: PatternSet = (0..256)
        .map(|v| Pattern::from_integer(v * 5 + 1, 10))
        .collect();
    let list = ParallelSimulator::new(&circuit).run(&universe, &patterns);
    let dictionary = FaultDictionary::from_fault_list(&list);
    let lot = ChipLot::from_model(&ModelLotConfig {
        chips: 1_000,
        yield_fraction: 0.07,
        n0: 8.0,
        fault_universe_size: universe.len(),
        seed: 3,
    });
    c.bench_function("wafer_test_1000_chips", |b| {
        b.iter(|| WaferTester::new(&dictionary).test_lot(black_box(&lot)))
    });

    // The multi-threaded pipeline on a 10x larger lot, serial versus all
    // cores: same per-chip streams, so both produce byte-identical lots and
    // only wall-clock differs.
    let big_config = ModelLotConfig {
        chips: 10_000,
        ..model_config
    };
    let serial_runner = ParallelLotRunner::new().with_threads(1);
    c.bench_function("model_lot_10k_chips_serial", |b| {
        b.iter(|| serial_runner.generate_model_lot(black_box(&big_config)))
    });
    let parallel_runner = ParallelLotRunner::new();
    c.bench_function("model_lot_10k_chips_parallel", |b| {
        b.iter(|| parallel_runner.generate_model_lot(black_box(&big_config)))
    });
    let big_lot = parallel_runner.generate_model_lot(&ModelLotConfig {
        chips: 10_000,
        fault_universe_size: universe.len(),
        ..model_config
    });
    c.bench_function("wafer_test_10k_chips_serial", |b| {
        b.iter(|| serial_runner.test_lot(&dictionary, black_box(&big_lot)))
    });
    c.bench_function("wafer_test_10k_chips_parallel", |b| {
        b.iter(|| parallel_runner.test_lot(&dictionary, black_box(&big_lot)))
    });
}

criterion_group!(benches, bench_lot_simulation);
criterion_main!(benches);
