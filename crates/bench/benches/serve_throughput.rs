//! Criterion benchmarks for the `lsiq-serve` query service: model-only
//! queries per second, and the cold-versus-warm cost of a compiled query
//! (warm = every artifact served from memo or disk, zero fault-simulation
//! passes).

use criterion::{criterion_group, criterion_main, Criterion};
use lsi_quality::Session;
use lsiq_exec::RunConfig;
use lsiq_serve::artifact::ArtifactStore;
use lsiq_serve::json::JsonValue;
use lsiq_serve::service::QueryService;
use std::hint::black_box;
use std::path::PathBuf;

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lsiq-serve-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn service(dir: Option<&PathBuf>) -> QueryService {
    let artifacts = match dir {
        None => ArtifactStore::disabled(),
        Some(dir) => ArtifactStore::at(dir).expect("writable dir"),
    };
    QueryService::new(
        Session::new(RunConfig::default().with_engine_auto()),
        artifacts,
    )
}

fn bench_model_queries(c: &mut Criterion) {
    let service = service(None);
    let forward =
        JsonValue::parse(r#"{"op":"forward","yield":0.07,"n0":8,"coverage":0.95}"#).unwrap();
    let inverse =
        JsonValue::parse(r#"{"op":"inverse","yield":0.07,"n0":8,"target_reject":0.001}"#).unwrap();
    let mut group = c.benchmark_group("serve_throughput");
    group.bench_function("forward_query", |b| {
        b.iter(|| service.handle(black_box(&forward), None))
    });
    group.bench_function("inverse_query", |b| {
        b.iter(|| service.handle(black_box(&inverse), None))
    });
    group.finish();
}

fn bench_cold_vs_warm_line(c: &mut Criterion) {
    let dir = scratch_dir();
    let line = JsonValue::parse(r#"{"op":"line","circuit":"c17","chips":500,"seed":7}"#).unwrap();
    let mut group = c.benchmark_group("serve_line_c17");
    // Cold: a fresh service and a fresh artifact directory every iteration —
    // the full fault-simulation cost of compiling the suite.
    group.bench_function("cold", |b| {
        b.iter(|| {
            let cold_dir = dir.join("cold");
            std::fs::remove_dir_all(&cold_dir).ok();
            let service = service(Some(&cold_dir));
            black_box(service.handle(black_box(&line), None))
        })
    });
    // Warm process: a fresh service per iteration over a persistent artifact
    // directory — deserialization instead of fault simulation.
    let warm_dir = dir.join("warm");
    service(Some(&warm_dir)).handle(&line, None);
    group.bench_function("warm_process", |b| {
        b.iter(|| {
            let service = service(Some(&warm_dir));
            black_box(service.handle(black_box(&line), None))
        })
    });
    // Warm memo: one persistent service, repeated queries — the in-process
    // memo answers without touching disk.
    let memo_service = service(Some(&warm_dir));
    memo_service.handle(&line, None);
    group.bench_function("warm_memo", |b| {
        b.iter(|| black_box(memo_service.handle(black_box(&line), None)))
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_model_queries, bench_cold_vs_warm_line);
criterion_main!(benches);
