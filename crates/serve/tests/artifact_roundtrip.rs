//! Artifact-layer integration: payload codecs round-trip exactly, and the
//! on-disk container rejects every corruption the format guards against —
//! truncation, flipped bits, a version bump, a stale circuit fingerprint —
//! by reporting a miss so the caller rebuilds.

use lsiq_bist::signature::SignatureDictionary;
use lsiq_fault::universe::FaultUniverse;
use lsiq_netlist::library;
use lsiq_serve::artifact::{stable_fingerprint, ArtifactStore, SuiteArtifact};
use lsiq_tpg::suite::TestSuiteBuilder;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A unique scratch directory per test (no tempfile crate in-tree).
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "lsiq-artifact-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn c17_suite_artifact() -> (SuiteArtifact, u64) {
    let circuit = library::c17();
    let universe = FaultUniverse::full(&circuit);
    let builder = TestSuiteBuilder {
        seed: 1981,
        chunk: 8,
        max_random_patterns: 32,
        target_coverage: 1.0,
        podem_top_up: false,
        ..TestSuiteBuilder::default()
    };
    let suite = builder.build(&circuit, &universe);
    let artifact = SuiteArtifact::from_parts(
        &suite.patterns,
        suite.deterministic_patterns,
        &suite.dictionary,
        &suite.coverage_curve,
    );
    (artifact, stable_fingerprint(&circuit))
}

#[test]
fn suite_artifact_round_trips_byte_exactly() {
    let (artifact, _) = c17_suite_artifact();
    let decoded = SuiteArtifact::decode(&artifact.encode()).expect("decodes");
    assert_eq!(decoded, artifact);
    // The reconstructed working objects match the originals field-for-field.
    assert_eq!(decoded.pattern_set().len(), artifact.patterns.len());
    assert_eq!(
        decoded.dictionary().first_patterns(),
        artifact.first_patterns.as_slice()
    );
    assert_eq!(
        decoded.coverage().cumulative(),
        artifact.cumulative.as_slice()
    );
}

#[test]
fn signature_dictionary_payload_round_trips() {
    use lsiq_serve::artifact::{decode_signature_dictionary, encode_signature_dictionary};

    let dictionary = SignatureDictionary::from_parts(
        16,
        8,
        vec![0xDEAD, 0xBEEF, 0x1981],
        vec![None, Some(0), Some(2), None, Some(1)],
        vec![false, true, true, true, true],
    );
    let decoded =
        decode_signature_dictionary(&encode_signature_dictionary(&dictionary)).expect("decodes");
    assert_eq!(decoded.session_len(), 16);
    assert_eq!(decoded.signature_width(), 8);
    assert_eq!(decoded.good_signatures(), dictionary.good_signatures());
    assert_eq!(
        decoded.first_failing_sessions(),
        dictionary.first_failing_sessions()
    );
    assert_eq!(
        decoded.raw_detected_flags(),
        dictionary.raw_detected_flags()
    );

    // Truncated and trailing-byte payloads are rejected, never mis-read.
    let bytes = encode_signature_dictionary(&dictionary);
    assert!(decode_signature_dictionary(&bytes[..bytes.len() - 1]).is_err());
    let mut extended = bytes.clone();
    extended.push(0);
    assert!(decode_signature_dictionary(&extended).is_err());
}

#[test]
fn store_round_trips_and_counts_hits() {
    let dir = scratch_dir("roundtrip");
    let store = ArtifactStore::at(&dir).expect("writable dir");
    let (artifact, fingerprint) = c17_suite_artifact();
    let payload = artifact.encode();

    assert_eq!(store.load("suite", 7, fingerprint), None, "cold: nothing");
    store.store("suite", 7, fingerprint, &payload);
    assert_eq!(store.load("suite", 7, fingerprint), Some(payload.clone()));
    assert_eq!(store.hits(), 1);
    assert_eq!(store.misses(), 1);

    // A second store process over the same directory sees the artifact.
    let second = ArtifactStore::at(&dir).expect("same dir");
    assert_eq!(second.load("suite", 7, fingerprint), Some(payload));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_truncated_stale_and_version_mismatched_files_are_misses() {
    let dir = scratch_dir("corrupt");
    let store = ArtifactStore::at(&dir).expect("writable dir");
    let (artifact, fingerprint) = c17_suite_artifact();
    let payload = artifact.encode();
    store.store("suite", 1, fingerprint, &payload);
    let path = dir.join("suite-0000000000000001.lsiqart");
    let pristine = std::fs::read(&path).expect("stored file");

    // Flipped payload bit: checksum mismatch.
    let mut flipped = pristine.clone();
    let middle = flipped.len() / 2;
    flipped[middle] ^= 0x40;
    std::fs::write(&path, &flipped).unwrap();
    assert_eq!(store.load("suite", 1, fingerprint), None, "corrupt");

    // Truncated file.
    std::fs::write(&path, &pristine[..pristine.len() - 3]).unwrap();
    assert_eq!(store.load("suite", 1, fingerprint), None, "truncated");

    // Version bump (byte 8..12 is the little-endian format version).
    let mut bumped = pristine.clone();
    bumped[8] = bumped[8].wrapping_add(1);
    std::fs::write(&path, &bumped).unwrap();
    assert_eq!(store.load("suite", 1, fingerprint), None, "version");

    // Stale fingerprint: the circuit generator changed, same key.
    std::fs::write(&path, &pristine).unwrap();
    let other = stable_fingerprint(&library::alu4());
    assert_ne!(other, fingerprint);
    assert_eq!(store.load("suite", 1, other), None, "stale fingerprint");

    // The pristine file still loads — the misses above were file checks,
    // not state corruption in the store.
    assert_eq!(store.load("suite", 1, fingerprint), Some(payload));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn disabled_store_misses_everything_and_swallows_stores() {
    let store = ArtifactStore::disabled();
    assert!(!store.is_persistent());
    store.store("suite", 3, 9, b"payload");
    assert_eq!(store.load("suite", 3, 9), None);
    assert_eq!(store.hits(), 0);
    assert_eq!(store.misses(), 1);
}
