//! Service-level integration: query answers match the underlying library
//! calls byte-for-byte, a warm artifact directory answers a repeated grid
//! with zero fault-simulation passes, and semantic errors never abort a
//! stream.

use lsi_quality::{BistSweepSpec, Session};
use lsiq_core::coverage_requirement::required_fault_coverage;
use lsiq_core::params::{FaultCoverage, ModelParams, RejectRate, Yield};
use lsiq_core::reject::field_reject_rate;
use lsiq_exec::RunConfig;
use lsiq_serve::artifact::ArtifactStore;
use lsiq_serve::json::JsonValue;
use lsiq_serve::service::QueryService;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "lsiq-service-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn in_memory_service() -> QueryService {
    QueryService::new(
        Session::new(RunConfig::default().with_engine_auto()),
        ArtifactStore::disabled(),
    )
}

fn handle(service: &QueryService, request: &str) -> JsonValue {
    let parsed = JsonValue::parse(request).expect("well-formed request");
    let response = service.handle(&parsed, None);
    assert_eq!(
        response.get("status").and_then(JsonValue::as_str),
        Some("ok"),
        "{}",
        response.to_line()
    );
    response
}

fn field(response: &JsonValue, name: &str) -> f64 {
    response
        .get(name)
        .and_then(JsonValue::as_f64)
        .unwrap_or_else(|| panic!("missing {name} in {}", response.to_line()))
}

#[test]
fn forward_and_inverse_match_the_core_model_exactly() {
    let service = in_memory_service();
    for (y, n0, coverage) in [(0.07, 8.0, 0.95), (0.25, 3.0, 0.5), (0.9, 1.0, 0.999)] {
        let response = handle(
            &service,
            &format!(r#"{{"op":"forward","yield":{y},"n0":{n0},"coverage":{coverage}}}"#),
        );
        let params = ModelParams::new(Yield::new(y).unwrap(), n0).unwrap();
        let expected = field_reject_rate(&params, FaultCoverage::new(coverage).unwrap());
        assert_eq!(
            field(&response, "reject_rate").to_bits(),
            expected.value().to_bits()
        );

        let target = expected.value().max(1e-9);
        let response = handle(
            &service,
            &format!(r#"{{"op":"inverse","yield":{y},"n0":{n0},"target_reject":{target}}}"#),
        );
        let expected = required_fault_coverage(&params, RejectRate::new(target).unwrap()).unwrap();
        assert_eq!(
            field(&response, "required_coverage").to_bits(),
            expected.value().to_bits()
        );
    }
}

#[test]
fn bist_cell_matches_the_session_sweep_byte_for_byte() {
    let service = in_memory_service();
    let response = handle(
        &service,
        r#"{"op":"bist","circuit":"alu4","yield":0.07,"n0":8,"test_length":128,"signature_width":16,"session_len":32,"channels":4}"#,
    );
    let session = Session::new(RunConfig::default().with_engine_auto());
    let sweep = session
        .run_bist_sweep_on(
            &lsiq_netlist::library::alu4(),
            &BistSweepSpec {
                test_lengths: vec![128],
                signature_widths: vec![16],
                session_len: 32,
                channels: 4,
                yield_fraction: 0.07,
                n0: 8.0,
                full_size: false,
            },
        )
        .expect("valid sweep");
    let row = sweep.rows[0];
    assert_eq!(
        response.get("sessions").and_then(JsonValue::as_usize),
        Some(row.sessions)
    );
    assert_eq!(
        response.get("aliased").and_then(JsonValue::as_usize),
        Some(row.aliased)
    );
    for (name, expected) in [
        ("raw_coverage", row.raw_coverage),
        ("effective_coverage", row.effective_coverage),
        ("aliasing_fraction", row.aliasing_fraction),
        (
            "estimated_aliasing_fraction",
            row.estimated_aliasing_fraction,
        ),
        ("defect_level_raw", row.defect_level_raw),
        ("defect_level_effective", row.defect_level_effective),
    ] {
        assert_eq!(
            field(&response, name).to_bits(),
            expected.to_bits(),
            "{name}"
        );
    }
}

#[test]
fn warm_artifact_directory_serves_a_second_process_without_fault_simulation() {
    let dir = scratch_dir("warm");
    let grid = [
        r#"{"op":"line","circuit":"c17","chips":500,"seed":11}"#,
        r#"{"op":"bist","circuit":"c17","test_length":64,"signature_width":8,"session_len":16,"channels":2}"#,
        r#"{"op":"lot","circuit":"c17","chips":20000,"block_len":1024,"seed":11}"#,
    ];

    let run = || {
        // A fresh service per run models a fresh process: no in-memory
        // memo survives, only the artifact directory.
        let service = QueryService::new(
            Session::new(RunConfig::default().with_engine_auto()),
            ArtifactStore::at(&dir).expect("writable dir"),
        );
        let responses: Vec<String> = grid
            .iter()
            .map(|request| {
                let mut response = handle(&service, request).to_line();
                let counters = response.find(",\"counters\":").expect("counters present");
                response.truncate(counters);
                response
            })
            .collect();
        (
            responses,
            service.fault_sim_passes(),
            service.artifacts().hits(),
        )
    };

    let (cold, cold_passes, _) = run();
    assert!(cold_passes >= 2, "cold run must fault simulate");
    let (warm, warm_passes, warm_hits) = run();
    assert_eq!(warm_passes, 0, "warm run must not fault simulate");
    assert!(warm_hits >= 2, "warm run must report artifact hits");
    assert_eq!(cold, warm, "numeric output must be byte-identical");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn semantic_errors_do_not_abort_the_stream() {
    let service = in_memory_service();
    let input = concat!(
        r#"{"op":"forward","id":1,"yield":0.07,"n0":8,"coverage":0.95}"#,
        "\n\n",
        r#"{"op":"warp","id":2}"#,
        "\n",
        r#"{"op":"forward","id":3,"yield":2.0,"n0":8,"coverage":0.95}"#,
        "\n",
        r#"{"op":"bist","id":4,"circuit":"nand9000","test_length":8,"signature_width":8}"#,
        "\n",
        r#"{"op":"forward","id":5,"yield":0.07,"n0":8,"coverage":0.5}"#,
        "\n",
    );
    let mut output = Vec::new();
    service
        .run_lines(input.as_bytes(), &mut output)
        .expect("semantic errors are per-query");
    let text = String::from_utf8(output).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 6, "5 responses + summary:\n{text}");
    for (index, expected_status) in ["ok", "error", "error", "error", "ok"].iter().enumerate() {
        let record = JsonValue::parse(lines[index]).expect("well-formed response");
        assert_eq!(
            record.get("status").and_then(JsonValue::as_str),
            Some(*expected_status),
            "line {index}: {}",
            lines[index]
        );
    }
    // Error responses carry the 1-based input line number (blank line counted).
    let error = JsonValue::parse(lines[1]).unwrap();
    assert_eq!(error.get("line").and_then(JsonValue::as_usize), Some(3));
    let summary = JsonValue::parse(lines[5]).unwrap();
    assert_eq!(
        summary.get("status").and_then(JsonValue::as_str),
        Some("summary")
    );
    assert_eq!(
        summary.get("queries").and_then(JsonValue::as_usize),
        Some(5)
    );
    assert_eq!(summary.get("errors").and_then(JsonValue::as_usize), Some(3));
}
