//! The `LSIQ_METRICS` surface of the serve protocol: under `json` every
//! response is followed by a `metrics` record carrying the registry delta
//! for that query, and the final `summary` embeds the full registry dump —
//! while the *responses themselves* stay byte-identical to a `LSIQ_METRICS`-
//! less run (the differential half).  `docs/OBSERVABILITY.md` documents the
//! record schema; `docs/SERVICE.md` shows the sed strip.

use lsiq_serve::json::JsonValue;
use std::process::{Command, Output, Stdio};

const BINARY: &str = env!("CARGO_BIN_EXE_lsiq-serve");

/// Runs the binary over `input`, isolated from ambient `LSIQ_*` knobs.
fn serve(input: &str, envs: &[(&str, &str)]) -> Output {
    let mut command = Command::new(BINARY);
    for (key, _) in std::env::vars() {
        if key.starts_with("LSIQ_") {
            command.env_remove(&key);
        }
    }
    for (key, value) in envs {
        command.env(key, value);
    }
    command
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    let mut child = command.spawn().expect("binary spawns");
    use std::io::Write as _;
    let _ = child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input.as_bytes());
    child.wait_with_output().expect("binary exits")
}

const INPUT: &str = concat!(
    r#"{"op":"forward","id":0,"yield":0.07,"n0":8,"coverage":0.95}"#,
    "\n",
    r#"{"op":"line","id":1,"circuit":"c17","chips":300,"seed":5,"checkpoints":[4,8]}"#,
    "\n",
    r#"{"op":"bist","id":2,"circuit":"c17","test_length":32,"signature_width":8,"session_len":8,"channels":2}"#,
    "\n",
);

/// Strips the trailing `"counters"` object (the only per-query response
/// field with a nondeterministic member, `elapsed_us`).
fn strip_counters(line: &str) -> String {
    match line.find(",\"counters\":") {
        Some(at) => format!("{}}}", &line[..at]),
        None => line.to_string(),
    }
}

/// The canonical comparable form: metrics records and the summary dropped
/// (the `sed` strip in `docs/SERVICE.md`), per-query timing stripped.
fn comparable(transcript: &str) -> Vec<String> {
    transcript
        .lines()
        .filter(|line| !line.contains("\"status\":\"metrics\""))
        .filter(|line| !line.contains("\"status\":\"summary\""))
        .map(strip_counters)
        .collect()
}

#[test]
fn json_mode_transcript_is_byte_identical_to_off_after_stripping_metrics() {
    let off = serve(INPUT, &[]);
    let json = serve(INPUT, &[("LSIQ_METRICS", "json")]);
    assert!(off.status.success(), "{off:?}");
    assert!(json.status.success(), "{json:?}");
    let off = String::from_utf8(off.stdout).unwrap();
    let json = String::from_utf8(json.stdout).unwrap();
    assert_eq!(comparable(&off), comparable(&json));
    // And the off transcript carries no metrics records at all.
    assert!(!off.contains("\"status\":\"metrics\""), "{off}");
}

#[test]
fn json_mode_emits_a_metrics_record_per_query_and_a_registry_dump() {
    let output = serve(INPUT, &[("LSIQ_METRICS", "json")]);
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8(output.stdout).unwrap();
    let lines: Vec<JsonValue> = stdout
        .lines()
        .map(|line| JsonValue::parse(line).expect("every record parses"))
        .collect();

    // Interleaving: response, metrics, response, metrics, ..., summary.
    let queries = INPUT.lines().count();
    assert_eq!(lines.len(), 2 * queries + 1, "{stdout}");
    for index in 0..queries {
        let response = &lines[2 * index];
        let metrics = &lines[2 * index + 1];
        assert_eq!(
            response.get("status").and_then(JsonValue::as_str),
            Some("ok")
        );
        assert_eq!(
            metrics.get("status").and_then(JsonValue::as_str),
            Some("metrics")
        );
        assert_eq!(
            metrics.get("line").and_then(JsonValue::as_usize),
            Some(index + 1)
        );
        let counters = metrics.get("counters").expect("counters object");
        // Every query bumps the query counter by exactly one (a delta).
        assert_eq!(
            counters.get("serve.queries").and_then(JsonValue::as_usize),
            Some(1),
            "{metrics:?}"
        );
        // The delta carries span and histogram sections too.
        assert!(metrics.get("spans").is_some(), "{metrics:?}");
        assert!(metrics.get("histograms").is_some(), "{metrics:?}");
    }

    // The line query fault simulates; its delta proves the engine counters
    // flow through the same registry.
    let line_metrics = &lines[3];
    let counters = line_metrics.get("counters").expect("counters object");
    assert!(
        counters
            .get("engine.runs")
            .and_then(JsonValue::as_usize)
            .unwrap_or(0)
            >= 1,
        "{line_metrics:?}"
    );

    // The summary embeds the full registry dump.
    let summary = lines.last().unwrap();
    assert_eq!(
        summary.get("status").and_then(JsonValue::as_str),
        Some("summary")
    );
    let registry = summary.get("registry").expect("registry dump");
    assert_eq!(
        registry
            .get("counters")
            .and_then(|c| c.get("serve.queries"))
            .and_then(JsonValue::as_usize),
        Some(queries),
        "{summary:?}"
    );
}
