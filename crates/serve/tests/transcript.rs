//! End-to-end transcripts through the `lsiq-serve` binary: the golden
//! Table 1 reproduction, graceful (exit 2, no panic) failure on malformed
//! input and bad configuration, and cold/warm byte-identity over a
//! persistent artifact directory.

use lsi_quality::Session;
use lsiq_exec::RunConfig;
use lsiq_serve::json::JsonValue;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};

const BINARY: &str = env!("CARGO_BIN_EXE_lsiq-serve");

fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "lsiq-transcript-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Runs the binary over `input`, isolated from ambient `LSIQ_*` knobs.
fn serve(input: &str, envs: &[(&str, &str)]) -> Output {
    let mut command = Command::new(BINARY);
    for (key, _) in std::env::vars() {
        if key.starts_with("LSIQ_") {
            command.env_remove(&key);
        }
    }
    for (key, value) in envs {
        command.env(key, value);
    }
    command
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    let mut child = command.spawn().expect("binary spawns");
    use std::io::Write as _;
    // A config-rejecting binary may exit before reading stdin; the broken
    // pipe is then part of the expected behaviour, not a test failure.
    let _ = child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input.as_bytes());
    child.wait_with_output().expect("binary exits")
}

/// Strips the trailing `"counters"` object (the only per-query field with
/// a nondeterministic member, `elapsed_us`).
fn strip_counters(line: &str) -> String {
    match line.find(",\"counters\":") {
        Some(at) => format!("{}}}", &line[..at]),
        None => line.to_string(),
    }
}

#[test]
fn golden_table1_transcript_matches_the_session_at_1e_neg9() {
    let output = serve("{\"op\":\"line\",\"id\":\"table1\"}\n", &[]);
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8(output.stdout).unwrap();
    let response = JsonValue::parse(stdout.lines().next().expect("one response")).unwrap();
    assert_eq!(
        response.get("status").and_then(JsonValue::as_str),
        Some("ok"),
        "{stdout}"
    );

    let reference = Session::new(RunConfig::default().with_engine_auto())
        .reproduce_table1()
        .expect("reference run");
    let close = |name: &str, expected: f64| {
        let got = response
            .get(name)
            .and_then(JsonValue::as_f64)
            .unwrap_or_else(|| panic!("missing {name}"));
        assert!(
            (got - expected).abs() <= 1e-9,
            "{name}: {got} vs {expected}"
        );
    };
    close("observed_yield", reference.observed_yield);
    close("observed_n0", reference.observed_n0);
    close("final_coverage", reference.coverage.final_coverage());
    assert_eq!(
        response.get("universe_size").and_then(JsonValue::as_usize),
        Some(reference.universe_size)
    );
    let rows = response
        .get("rows")
        .and_then(JsonValue::as_array)
        .expect("rows");
    let expected_rows = reference.experiment.rows();
    assert_eq!(rows.len(), expected_rows.len());
    for (row, expected) in rows.iter().zip(expected_rows) {
        assert_eq!(
            row.get("patterns").and_then(JsonValue::as_usize),
            Some(expected.patterns_applied)
        );
        assert_eq!(
            row.get("chips_failed").and_then(JsonValue::as_usize),
            Some(expected.chips_failed)
        );
        let coverage = row.get("coverage").and_then(JsonValue::as_f64).unwrap();
        assert!((coverage - expected.fault_coverage).abs() <= 1e-9);
        let fraction = row
            .get("fraction_failed")
            .and_then(JsonValue::as_f64)
            .unwrap();
        assert!((fraction - expected.fraction_failed).abs() <= 1e-9);
    }
}

#[test]
fn malformed_json_exits_2_with_a_line_numbered_record_and_no_panic() {
    let input = concat!(
        r#"{"op":"forward","yield":0.07,"n0":8,"coverage":0.95}"#,
        "\n",
        "{\"op\": \"forward\", \"yield\": 0.07,,}\n",
        r#"{"op":"forward","yield":0.07,"n0":8,"coverage":0.5}"#,
        "\n",
    );
    let output = serve(input, &[]);
    assert_eq!(output.status.code(), Some(2), "{output:?}");
    let stdout = String::from_utf8(output.stdout).unwrap();
    let stderr = String::from_utf8(output.stderr).unwrap();
    assert!(!stdout.contains("panicked") && !stderr.contains("panicked"));
    // The first (valid) query was answered before the stream died.
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "response + error record:\n{stdout}");
    let error = JsonValue::parse(lines[1]).unwrap();
    assert_eq!(
        error.get("status").and_then(JsonValue::as_str),
        Some("error")
    );
    assert_eq!(error.get("line").and_then(JsonValue::as_usize), Some(2));
    assert!(stderr.contains("line 2"), "{stderr}");
}

#[test]
fn bad_artifact_dir_exits_2_gracefully() {
    // A path under a regular file can never become a directory.
    let dir = scratch_dir("bad-dir");
    let file = dir.join("occupied");
    std::fs::write(&file, b"not a directory").unwrap();
    let nested = file.join("cache");
    let output = serve(
        "{\"op\":\"forward\",\"yield\":0.07,\"n0\":8,\"coverage\":0.9}\n",
        &[("LSIQ_ARTIFACT_DIR", nested.to_str().unwrap())],
    );
    assert_eq!(output.status.code(), Some(2), "{output:?}");
    let stderr = String::from_utf8(output.stderr).unwrap();
    assert!(stderr.contains("LSIQ_ARTIFACT_DIR"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");

    let output = serve(
        "{\"op\":\"forward\",\"yield\":0.07,\"n0\":8,\"coverage\":0.9}\n",
        &[("LSIQ_ARTIFACT_DIR", "  ")],
    );
    assert_eq!(output.status.code(), Some(2), "{output:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cold_and_warm_binary_runs_are_byte_identical_after_stripping_timing() {
    let dir = scratch_dir("cold-warm");
    let input = concat!(
        r#"{"op":"forward","id":0,"yield":0.07,"n0":8,"coverage":0.95}"#,
        "\n",
        r#"{"op":"line","id":1,"circuit":"c17","chips":300,"seed":5,"checkpoints":[4,8]}"#,
        "\n",
        r#"{"op":"bist","id":2,"circuit":"c17","test_length":32,"signature_width":8,"session_len":8,"channels":2}"#,
        "\n",
    );
    let envs = [("LSIQ_ARTIFACT_DIR", dir.to_str().unwrap())];
    let run = |label: &str| {
        let output = serve(input, &envs);
        assert!(output.status.success(), "{label}: {output:?}");
        String::from_utf8(output.stdout).unwrap()
    };
    let cold = run("cold");
    let warm = run("warm");

    let stripped = |text: &str| {
        text.lines()
            .filter(|line| !line.contains("\"status\":\"summary\""))
            .map(strip_counters)
            .collect::<Vec<_>>()
    };
    assert_eq!(stripped(&cold), stripped(&warm));

    // The warm process proves it never fault simulated.
    let summary = warm
        .lines()
        .last()
        .map(|line| JsonValue::parse(line).unwrap())
        .expect("summary record");
    assert_eq!(
        summary
            .get("fault_sim_passes")
            .and_then(JsonValue::as_usize),
        Some(0),
        "{warm}"
    );
    assert!(
        summary
            .get("artifact_hits")
            .and_then(JsonValue::as_usize)
            .unwrap()
            >= 2,
        "{warm}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
