//! Answers a small planning grid through the library API — the same
//! service the `lsiq-serve` binary wraps, usable in-process.
//!
//! ```text
//! cargo run --example batch_grid -p lsiq-serve
//! ```
//!
//! Set `LSIQ_ARTIFACT_DIR` to persist the compiled artifacts; a second run
//! then reports artifact hits and zero fault-simulation passes.

use lsiq_serve::json::JsonValue;
use lsiq_serve::service::QueryService;

fn main() {
    let service = QueryService::from_env().unwrap_or_else(|error| {
        eprintln!("lsiq: {error}");
        std::process::exit(2);
    });
    // A coverage sweep at the paper's Section 7 ground truth, one inverse
    // solve, and a BIST plan on the alu4 library device.
    let mut grid: Vec<String> = (0..5)
        .map(|step| {
            let coverage = 0.90 + 0.02 * f64::from(step);
            format!(r#"{{"op":"forward","id":{step},"yield":0.07,"n0":8,"coverage":{coverage}}}"#)
        })
        .collect();
    grid.push(r#"{"op":"inverse","id":"target","yield":0.07,"n0":8,"target_reject":0.001}"#.into());
    grid.push(
        r#"{"op":"bist","id":"plan","circuit":"alu4","test_length":128,"signature_width":16}"#
            .into(),
    );
    for line in &grid {
        let request = JsonValue::parse(line).expect("example queries are well-formed");
        println!("{}", service.handle(&request, None).to_line());
    }
    eprintln!(
        "served {} queries: {} artifact hits, {} misses, {} fault-simulation passes",
        grid.len(),
        service.artifacts().hits(),
        service.artifacts().misses(),
        service.fault_sim_passes(),
    );
}
