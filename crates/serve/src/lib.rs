//! `lsiq-serve`: a batch quality-planning query service.
//!
//! The paper's model (Agrawal, Seth & Agrawal, DAC 1981) answers planning
//! questions — *what defect level does this coverage buy? what coverage
//! does this quality target require? how does this BIST plan compare?* —
//! and a planning session asks those questions in grids: many `(circuit,
//! yield, n0, test plan)` points at once.  Answering each point from
//! scratch wastes almost all of the work, because the expensive objects
//! (the compiled circuit, its line test suite, each signature dictionary)
//! depend only on the circuit and the test plan, not on the model point.
//!
//! This crate is the grid front-end:
//!
//! * [`request`] — the JSON-lines query schema (`forward`, `inverse`,
//!   `bist`, `line`, `lot`), parsed strictly with descriptive errors;
//! * [`service`] — [`QueryService`], one persistent
//!   `Session`/`ExecutionContext` pool answering every query, with
//!   in-process memoization over the artifact layer;
//! * [`artifact`] — keyed, checksummed, versioned on-disk persistence
//!   (`LSIQ_ARTIFACT_DIR`), so a *second process* replays a grid with zero
//!   fault-simulation passes — proven by the per-query counter deltas,
//!   which are atomics mirrored into the `lsiq_obs` metrics registry
//!   (`serve.*` names; `docs/OBSERVABILITY.md` has the catalogue).  Under
//!   `LSIQ_METRICS=json` each response is followed by a `metrics` record
//!   carrying the registry delta, and the final summary embeds the full
//!   registry dump;
//! * [`json`] / [`codec`] — a dependency-free strict JSON layer with
//!   canonical (round-trip exact) number formatting, and the binary codec
//!   plus FNV-1a hashing under the artifact files.
//!
//! Lot queries of any size run through the streaming executor
//! (`lsiq_manufacturing::streaming`), so a billion-chip lot needs
//! `O(workers × patterns)` memory and returns statistics byte-identical
//! to the in-memory pipeline.
//!
//! The `lsiq-serve` binary speaks the same protocol over stdin/stdout or
//! files; `docs/SERVICE.md` documents the schema, the cache layout and the
//! memory model.
//!
//! ```
//! use lsiq_serve::artifact::ArtifactStore;
//! use lsiq_serve::json::JsonValue;
//! use lsiq_serve::service::QueryService;
//! use lsi_quality::Session;
//! use lsiq_exec::RunConfig;
//!
//! let service = QueryService::new(
//!     Session::new(RunConfig::default().with_engine_auto()),
//!     ArtifactStore::disabled(),
//! );
//! let request = JsonValue::parse(
//!     r#"{"op":"forward","yield":0.07,"n0":8,"coverage":0.95}"#,
//! )
//! .unwrap();
//! let response = service.handle(&request, None);
//! assert_eq!(response.get("status").unwrap().as_str(), Some("ok"));
//! let reject = response.get("reject_rate").unwrap().as_f64().unwrap();
//! assert!(reject > 0.0 && reject < 1.0);
//! ```

pub mod artifact;
pub mod codec;
pub mod json;
pub mod request;
pub mod service;

pub use artifact::{stable_fingerprint, ArtifactStore, SuiteArtifact, ARTIFACT_DIR_VAR};
pub use json::JsonValue;
pub use request::Request;
pub use service::{QueryService, ServeError};
