//! A tiny deterministic binary codec for artifact payloads.
//!
//! Artifacts are written by one process and read by another (possibly on a
//! later day), so the encoding must be explicit about every byte: all
//! integers are little-endian, floats travel as their IEEE-754 bit
//! patterns (exact round-trip), optional indices use a `u64::MAX` sentinel,
//! and strings carry a length prefix.  The same module provides the
//! FNV-1a hash the artifact layer uses both for content checksums and for
//! cache-key derivation — chosen because it is trivially stable across
//! compiler versions, unlike `std`'s `DefaultHasher`.

/// 64-bit FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = Fnv1a::new();
    hash.update(bytes);
    hash.finish()
}

/// An incremental 64-bit FNV-1a hasher.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Starts a fresh hash at the FNV offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(Self::OFFSET)
    }

    /// Folds `bytes` into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Folds one little-endian `u64` into the hash.
    pub fn update_u64(&mut self, value: u64) {
        self.update(&value.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// A decoding failure: truncated input, a bad sentinel, malformed UTF-8.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "artifact payload corrupt: {}", self.0)
    }
}

/// Appends fixed-width primitives to a byte vector.
#[derive(Debug, Default)]
pub struct ByteWriter {
    bytes: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, value: u8) {
        self.bytes.push(value);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, value: u32) {
        self.bytes.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, value: u64) {
        self.bytes.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends an `f64` as its exact IEEE-754 bit pattern.
    pub fn put_f64(&mut self, value: f64) {
        self.put_u64(value.to_bits());
    }

    /// Appends a boolean as one byte (0 or 1).
    pub fn put_bool(&mut self, value: bool) {
        self.put_u8(u8::from(value));
    }

    /// Appends an optional index; `None` travels as `u64::MAX`.
    pub fn put_opt_index(&mut self, value: Option<usize>) {
        match value {
            None => self.put_u64(u64::MAX),
            Some(index) => self.put_u64(index as u64),
        }
    }
}

/// Reads the primitives [`ByteWriter`] appends, validating length as it
/// goes.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> ByteReader<'a> {
        ByteReader { bytes, at: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    /// Fails unless every byte has been consumed.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError(format!("{} trailing bytes", self.remaining())))
        }
    }

    fn take(&mut self, count: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < count {
            return Err(CodecError(format!(
                "needed {count} bytes, {} left",
                self.remaining()
            )));
        }
        let slice = &self.bytes[self.at..self.at + count];
        self.at += count;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a `u64` that must fit a `usize` count.
    pub fn get_len(&mut self) -> Result<usize, CodecError> {
        let value = self.get_u64()?;
        usize::try_from(value).map_err(|_| CodecError(format!("length {value} out of range")))
    }

    /// Reads an exact `f64` bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a boolean byte, rejecting anything but 0/1.
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError(format!("invalid boolean byte {other}"))),
        }
    }

    /// Reads an optional index (`u64::MAX` sentinel for `None`).
    pub fn get_opt_index(&mut self) -> Result<Option<usize>, CodecError> {
        let value = self.get_u64()?;
        if value == u64::MAX {
            Ok(None)
        } else {
            usize::try_from(value)
                .map(Some)
                .map_err(|_| CodecError(format!("index {value} out of range")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut writer = ByteWriter::new();
        writer.put_u8(7);
        writer.put_u32(1981);
        writer.put_u64(u64::MAX - 1);
        writer.put_f64(0.07);
        writer.put_bool(true);
        writer.put_bool(false);
        writer.put_opt_index(None);
        writer.put_opt_index(Some(42));
        let bytes = writer.into_bytes();
        let mut reader = ByteReader::new(&bytes);
        assert_eq!(reader.get_u8().unwrap(), 7);
        assert_eq!(reader.get_u32().unwrap(), 1981);
        assert_eq!(reader.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(reader.get_f64().unwrap().to_bits(), 0.07f64.to_bits());
        assert!(reader.get_bool().unwrap());
        assert!(!reader.get_bool().unwrap());
        assert_eq!(reader.get_opt_index().unwrap(), None);
        assert_eq!(reader.get_opt_index().unwrap(), Some(42));
        reader.finish().expect("all consumed");
    }

    #[test]
    fn truncation_and_garbage_are_rejected() {
        let mut writer = ByteWriter::new();
        writer.put_u64(5);
        let bytes = writer.into_bytes();
        let mut reader = ByteReader::new(&bytes[..4]);
        assert!(reader.get_u64().is_err());
        let mut reader = ByteReader::new(&[9]);
        assert!(reader.get_bool().is_err());
        let reader = ByteReader::new(&bytes);
        assert!(reader.finish().is_err(), "unconsumed bytes must fail");
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
        let mut incremental = Fnv1a::new();
        incremental.update(b"foo");
        incremental.update(b"bar");
        assert_eq!(incremental.finish(), fnv1a(b"foobar"));
    }
}
