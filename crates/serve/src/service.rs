//! The batch query service: one persistent [`Session`] answering a stream
//! of newline-delimited JSON planning queries.
//!
//! Every expensive object — the compiled device, its line test suite, each
//! BIST signature dictionary — is memoized in-process *and* persisted
//! through the [`ArtifactStore`], so a query grid pays for each
//! fault-simulation pass at most once per artifact directory lifetime,
//! across processes.  Lots are evaluated by the streaming executor
//! ([`StreamingLotExecutor`]), so a billion-chip query holds
//! `O(workers × patterns)` memory and returns statistics byte-identical
//! to the in-memory pipeline.
//!
//! Protocol, schema and counter semantics are specified in
//! `docs/SERVICE.md`.

use crate::artifact::{
    decode_signature_dictionary, encode_signature_dictionary, stable_fingerprint, ArtifactStore,
    SuiteArtifact,
};
use crate::codec::Fnv1a;
use crate::json::{number, object, string, JsonValue};
use crate::request::{BistParams, LotParams, ModelInputs, Request};
use lsi_quality::{Session, PROGRAMME_SEED};
use lsiq_bist::aliasing::AliasingReport;
use lsiq_bist::misr::Misr;
use lsiq_bist::signature::SignatureDictionary;
use lsiq_bist::stumps::{StumpsConfig, StumpsGenerator};
use lsiq_core::coverage_requirement::required_fault_coverage;
use lsiq_core::params::{FaultCoverage, ModelParams, RejectRate, Yield};
use lsiq_core::reject::field_reject_rate;
use lsiq_exec::{ConfigError, MetricsMode, RunConfig, ENGINE_VAR};
use lsiq_fault::coverage::CoverageCurve;
use lsiq_fault::dictionary::FaultDictionary;
use lsiq_fault::universe::FaultUniverse;
use lsiq_manufacturing::lot::ModelLotConfig;
use lsiq_manufacturing::streaming::{StreamedLot, StreamingLotExecutor};
use lsiq_netlist::circuit::Circuit;
use lsiq_netlist::library;
use lsiq_obs::{Counter, Histogram, Snapshot, Span};
use std::cell::RefCell;
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Registry mirrors of the per-service [`Counters`]: process-wide totals
/// across every `QueryService` in the process.  The per-service atomics
/// stay authoritative for per-query deltas and the summary record, so
/// concurrently running services never bleed into each other's responses.
static QUERIES: Counter = Counter::new("serve.queries");
static ERRORS: Counter = Counter::new("serve.errors");
static FAULT_SIM_PASSES: Counter = Counter::new("serve.fault_sim_passes");
static CHIPS_SIMULATED: Counter = Counter::new("serve.chips_simulated");
/// Wall time spent inside [`QueryService::handle`].
static QUERY_SPAN: Span = Span::new("serve.query");
/// Per-query latency distribution (microseconds, power-of-two buckets).
static QUERY_US: Histogram = Histogram::new("serve.query_us");

/// The device names a query may reference.
pub const CIRCUITS: [&str; 4] = ["c17", "alu4", "reduced", "full"];

/// A fatal service error: bad configuration, a broken stream, or a
/// malformed (non-JSON) request line.  The binary maps every variant to
/// exit status 2.
#[derive(Debug)]
pub enum ServeError {
    /// An invalid `LSIQ_*` knob.
    Config(ConfigError),
    /// The input or output stream failed.
    Io(std::io::Error),
    /// A request line was not a JSON document.  A line-numbered error
    /// record has already been written to the output stream.
    Malformed {
        /// 1-based line number of the offending request.
        line: usize,
        /// The parser's message.
        message: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(error) => write!(f, "{error}"),
            ServeError::Io(error) => write!(f, "stream error: {error}"),
            ServeError::Malformed { line, message } => {
                write!(f, "line {line}: malformed JSON request: {message}")
            }
        }
    }
}

impl From<ConfigError> for ServeError {
    fn from(error: ConfigError) -> ServeError {
        ServeError::Config(error)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(error: std::io::Error) -> ServeError {
        ServeError::Io(error)
    }
}

/// A compiled device: the circuit, its stable fingerprint and its fault
/// universe, shared by every query that names it.
struct CompiledCircuit {
    circuit: Circuit,
    fingerprint: u64,
    universe: FaultUniverse,
}

/// The persistent parts of a line suite a lot query consults.
struct LineSuite {
    dictionary: FaultDictionary,
    coverage: CoverageCurve,
    deterministic_patterns: usize,
}

/// Monotonic service counters, also reported as per-query deltas.
///
/// Atomics rather than `Cell<u64>` so `QueryService` stays `Sync`-safe to
/// share behind a reference; every bump is mirrored into the process-wide
/// metrics registry (`serve.*`).
#[derive(Debug, Default)]
struct Counters {
    queries: AtomicU64,
    errors: AtomicU64,
    fault_sim_passes: AtomicU64,
    chips_simulated: AtomicU64,
}

impl Counters {
    fn bump(field: &AtomicU64, mirror: &Counter, amount: u64) -> u64 {
        mirror.add(amount);
        field.fetch_add(amount, Ordering::Relaxed) + amount
    }
}

/// The batch planning query service.
pub struct QueryService {
    session: Session,
    artifacts: ArtifactStore,
    circuits: RefCell<HashMap<String, Rc<CompiledCircuit>>>,
    suites: RefCell<HashMap<u64, Rc<LineSuite>>>,
    dictionaries: RefCell<HashMap<u64, Rc<SignatureDictionary>>>,
    counters: Counters,
}

impl QueryService {
    /// Opens a service over an explicit session and artifact store.
    pub fn new(session: Session, artifacts: ArtifactStore) -> QueryService {
        QueryService {
            session,
            artifacts,
            circuits: RefCell::new(HashMap::new()),
            suites: RefCell::new(HashMap::new()),
            dictionaries: RefCell::new(HashMap::new()),
            counters: Counters::default(),
        }
    }

    /// Opens a service from the environment: the `LSIQ_*` knobs through
    /// [`RunConfig::from_env`], the artifact directory through
    /// `LSIQ_ARTIFACT_DIR`.  When `LSIQ_ENGINE` is unset the service
    /// defaults to adaptive (`auto`) engine selection — it compiles
    /// devices of very different sizes, so one fixed engine is rarely
    /// right for all of them.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when any knob is set to an invalid value.
    pub fn from_env() -> Result<QueryService, ConfigError> {
        let mut config = RunConfig::from_env()?;
        if std::env::var_os(ENGINE_VAR).is_none() {
            config = config.with_engine_auto();
        }
        Ok(QueryService::new(
            Session::new(config),
            ArtifactStore::from_env()?,
        ))
    }

    /// The underlying session.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The artifact store (for its hit/miss counters).
    pub fn artifacts(&self) -> &ArtifactStore {
        &self.artifacts
    }

    /// Fault-simulation passes performed so far — the number that must
    /// stay at zero on a fully warm artifact cache.
    pub fn fault_sim_passes(&self) -> u64 {
        self.counters.fault_sim_passes.load(Ordering::Relaxed)
    }

    /// Chips generated and tested by lot queries so far.
    pub fn chips_simulated(&self) -> u64 {
        self.counters.chips_simulated.load(Ordering::Relaxed)
    }

    /// Whether this session emits `metrics` records and the summary's
    /// registry dump (`LSIQ_METRICS=json`).
    fn emit_metrics(&self) -> bool {
        self.session.config().metrics() == MetricsMode::Json
    }

    /// Runs the JSON-lines protocol: one request per input line, one
    /// response per request, one summary record after the stream ends.
    /// Empty lines are skipped.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Malformed`] on the first non-JSON line
    /// (after writing a line-numbered error record) and
    /// [`ServeError::Io`] on stream failure.  Semantically invalid
    /// requests produce per-query error responses and do not abort the
    /// stream.
    pub fn run_lines<R: BufRead, W: Write>(
        &self,
        reader: R,
        mut writer: W,
    ) -> Result<(), ServeError> {
        let started = Instant::now();
        for (index, line) in reader.lines().enumerate() {
            let line = line?;
            let line_number = index + 1;
            if line.trim().is_empty() {
                continue;
            }
            let parsed = match JsonValue::parse(&line) {
                Ok(value) => value,
                Err(error) => {
                    let record = object(vec![
                        ("status", string("error")),
                        ("line", number(line_number as u64)),
                        ("error", string(&format!("malformed JSON: {error}"))),
                    ]);
                    writeln!(writer, "{}", record.to_line())?;
                    writer.flush()?;
                    return Err(ServeError::Malformed {
                        line: line_number,
                        message: error.to_string(),
                    });
                }
            };
            let before = self.emit_metrics().then(lsiq_obs::snapshot);
            let response = self.handle(&parsed, Some(line_number));
            writeln!(writer, "{}", response.to_line())?;
            if let Some(before) = before {
                let delta = lsiq_obs::snapshot().delta_since(&before);
                let record = metrics_record(line_number, &delta);
                writeln!(writer, "{}", record.to_line())?;
            }
            writer.flush()?;
        }
        let summary = self.summary(started.elapsed().as_millis() as u64);
        writeln!(writer, "{}", summary.to_line())?;
        writer.flush()?;
        Ok(())
    }

    /// Answers one request object, returning the response record.
    /// Never panics on any well-formed JSON input.
    pub fn handle(&self, request: &JsonValue, line: Option<usize>) -> JsonValue {
        let _timer = QUERY_SPAN.start();
        Counters::bump(&self.counters.queries, &QUERIES, 1);
        let hits_before = self.artifacts.hits();
        let misses_before = self.artifacts.misses();
        let passes_before = self.fault_sim_passes();
        let chips_before = self.chips_simulated();
        let started = Instant::now();
        let (op, id, outcome) = match Request::parse(request) {
            Err(message) => (None, request.get("id").cloned(), Err(message)),
            Ok((parsed, id)) => (Some(parsed.op()), id, self.dispatch(&parsed)),
        };
        let mut pairs: Vec<(String, JsonValue)> = Vec::new();
        match outcome {
            Ok(body) => {
                pairs.push(("status".to_string(), string("ok")));
                if let Some(op) = op {
                    pairs.push(("op".to_string(), string(op)));
                }
                if let Some(id) = id {
                    pairs.push(("id".to_string(), id));
                }
                if let JsonValue::Object(fields) = body {
                    pairs.extend(fields);
                }
            }
            Err(message) => {
                Counters::bump(&self.counters.errors, &ERRORS, 1);
                pairs.push(("status".to_string(), string("error")));
                if let Some(op) = op {
                    pairs.push(("op".to_string(), string(op)));
                }
                if let Some(id) = id {
                    pairs.push(("id".to_string(), id));
                }
                if let Some(line) = line {
                    pairs.push(("line".to_string(), number(line as u64)));
                }
                pairs.push(("error".to_string(), string(&message)));
            }
        }
        pairs.push((
            "counters".to_string(),
            object(vec![
                ("artifact_hits", number(self.artifacts.hits() - hits_before)),
                (
                    "artifact_misses",
                    number(self.artifacts.misses() - misses_before),
                ),
                (
                    "fault_sim_passes",
                    number(self.fault_sim_passes() - passes_before),
                ),
                (
                    "chips_simulated",
                    number(self.chips_simulated() - chips_before),
                ),
                ("elapsed_us", number(started.elapsed().as_micros() as u64)),
            ]),
        ));
        QUERY_US.observe(started.elapsed().as_micros() as u64);
        JsonValue::Object(pairs)
    }

    /// The end-of-stream summary record.  Under `LSIQ_METRICS=json` it
    /// carries a `registry` object: the full metrics-registry dump.
    fn summary(&self, wall_ms: u64) -> JsonValue {
        let cache = self.session.good_machine_cache();
        let mut summary = object(vec![
            ("status", string("summary")),
            (
                "queries",
                number(self.counters.queries.load(Ordering::Relaxed)),
            ),
            (
                "errors",
                number(self.counters.errors.load(Ordering::Relaxed)),
            ),
            ("artifact_hits", number(self.artifacts.hits())),
            ("artifact_misses", number(self.artifacts.misses())),
            ("good_machine_hits", number(cache.hits())),
            ("good_machine_misses", number(cache.misses())),
            ("fault_sim_passes", number(self.fault_sim_passes())),
            ("chips_simulated", number(self.chips_simulated())),
            ("wall_ms", number(wall_ms)),
        ]);
        if self.emit_metrics() {
            if let JsonValue::Object(pairs) = &mut summary {
                pairs.push(("registry".to_string(), snapshot_json(&lsiq_obs::snapshot())));
            }
        }
        summary
    }

    fn dispatch(&self, request: &Request) -> Result<JsonValue, String> {
        match request {
            Request::Forward { model, coverage } => self.forward(model, *coverage),
            Request::Inverse {
                model,
                target_reject,
            } => self.inverse(model, *target_reject),
            Request::Bist(params) => self.bist(params),
            Request::Line(params) => self.lot(params, true),
            Request::Lot(params) => self.lot(params, false),
        }
    }

    fn model_params(model: &ModelInputs) -> Result<ModelParams, String> {
        let yield_fraction = Yield::new(model.yield_fraction)
            .map_err(|_| "\"yield\" must be a fraction in [0, 1]".to_string())?;
        ModelParams::new(yield_fraction, model.n0)
            .map_err(|_| "\"n0\" must be a finite value >= 1".to_string())
    }

    fn forward(&self, model: &ModelInputs, coverage: f64) -> Result<JsonValue, String> {
        let params = Self::model_params(model)?;
        let coverage = FaultCoverage::new(coverage)
            .map_err(|_| "\"coverage\" must be a fraction in [0, 1]".to_string())?;
        let reject = field_reject_rate(&params, coverage);
        Ok(object(vec![
            ("yield", JsonValue::Number(model.yield_fraction)),
            ("n0", JsonValue::Number(model.n0)),
            ("coverage", JsonValue::Number(coverage.value())),
            ("reject_rate", JsonValue::Number(reject.value())),
            ("defect_level_ppm", JsonValue::Number(reject.value() * 1e6)),
        ]))
    }

    fn inverse(&self, model: &ModelInputs, target_reject: f64) -> Result<JsonValue, String> {
        let params = Self::model_params(model)?;
        let target = RejectRate::new(target_reject)
            .map_err(|_| "\"target_reject\" must be a fraction in [0, 1]".to_string())?;
        let required = required_fault_coverage(&params, target)
            .map_err(|error| format!("required-coverage solve failed: {error}"))?;
        Ok(object(vec![
            ("yield", JsonValue::Number(model.yield_fraction)),
            ("n0", JsonValue::Number(model.n0)),
            ("target_reject", JsonValue::Number(target.value())),
            ("required_coverage", JsonValue::Number(required.value())),
        ]))
    }

    fn compiled(&self, name: &str) -> Result<Rc<CompiledCircuit>, String> {
        if let Some(compiled) = self.circuits.borrow().get(name) {
            return Ok(compiled.clone());
        }
        let circuit = match name {
            "c17" => library::c17(),
            "alu4" => library::alu4(),
            "reduced" => Session::reproduction_circuit(false),
            "full" => Session::reproduction_circuit(true),
            other => {
                return Err(format!(
                    "unknown circuit {other:?} (expected one of {})",
                    CIRCUITS.join(", ")
                ))
            }
        };
        let fingerprint = stable_fingerprint(&circuit);
        let universe = FaultUniverse::full(&circuit);
        let compiled = Rc::new(CompiledCircuit {
            circuit,
            fingerprint,
            universe,
        });
        self.circuits
            .borrow_mut()
            .insert(name.to_string(), compiled.clone());
        Ok(compiled)
    }

    /// The line suite for a device: in-process memo, then the artifact
    /// store, then (counted) a fresh fault-simulation build.
    fn line_suite(&self, compiled: &CompiledCircuit) -> Rc<LineSuite> {
        // Key over the builder's programme parameters: they are baked into
        // `Session::line_suite_builder`, so spelling them in the key means
        // any future change rolls the key instead of reusing stale suites.
        let mut key = Fnv1a::new();
        key.update(b"line-suite/seed1981/chunk64/rand192/cov0.95/podem-off");
        key.update_u64(compiled.fingerprint);
        let key = key.finish();
        if let Some(suite) = self.suites.borrow().get(&key) {
            self.artifacts.record_hit();
            return suite.clone();
        }
        if let Some(payload) = self.artifacts.load("suite", key, compiled.fingerprint) {
            if let Ok(artifact) = SuiteArtifact::decode(&payload) {
                let suite = Rc::new(LineSuite {
                    dictionary: artifact.dictionary(),
                    coverage: artifact.coverage(),
                    deterministic_patterns: artifact.deterministic_patterns,
                });
                self.suites.borrow_mut().insert(key, suite.clone());
                return suite;
            }
        }
        Counters::bump(&self.counters.fault_sim_passes, &FAULT_SIM_PASSES, 1);
        let built = self
            .session
            .line_suite_builder(&compiled.circuit)
            .build_cached(
                Some(self.session.context()),
                Some(self.session.good_machine_cache()),
                &compiled.circuit,
                &compiled.universe,
            );
        let artifact = SuiteArtifact::from_parts(
            &built.patterns,
            built.deterministic_patterns,
            &built.dictionary,
            &built.coverage_curve,
        );
        self.artifacts
            .store("suite", key, compiled.fingerprint, &artifact.encode());
        let suite = Rc::new(LineSuite {
            dictionary: built.dictionary,
            coverage: built.coverage_curve,
            deterministic_patterns: built.deterministic_patterns,
        });
        self.suites.borrow_mut().insert(key, suite.clone());
        suite
    }

    fn bist(&self, params: &BistParams) -> Result<JsonValue, String> {
        let model = Self::model_params(&params.model)?;
        Misr::try_new(params.signature_width)
            .map_err(|error| format!("\"signature_width\": {error}"))?;
        if params.session_len == 0 {
            return Err("\"session_len\" must be at least 1".to_string());
        }
        if params.test_length == 0 {
            return Err("\"test_length\" must be at least 1".to_string());
        }
        let compiled = self.compiled(&params.circuit)?;
        let seed = self.session.config().seed_or(PROGRAMME_SEED);
        let mut key = Fnv1a::new();
        key.update(b"sigdict/stumps-deg64");
        key.update_u64(compiled.fingerprint);
        key.update_u64(params.test_length as u64);
        key.update_u64(u64::from(params.signature_width));
        key.update_u64(params.session_len as u64);
        key.update_u64(params.channels as u64);
        key.update_u64(seed);
        let key = key.finish();
        let memo_hit = self.dictionaries.borrow().get(&key).cloned();
        let dictionary = if let Some(hit) = memo_hit {
            self.artifacts.record_hit();
            hit
        } else if let Some(decoded) = self
            .artifacts
            .load("sigdict", key, compiled.fingerprint)
            .and_then(|payload| decode_signature_dictionary(&payload).ok())
        {
            let dictionary = Rc::new(decoded);
            self.dictionaries
                .borrow_mut()
                .insert(key, dictionary.clone());
            dictionary
        } else {
            let generator = StumpsGenerator::try_new(&StumpsConfig {
                width: compiled.circuit.primary_inputs().len(),
                channels: params.channels,
                degree: 64,
                seed,
            })
            .map_err(|error| format!("\"channels\": {error}"))?;
            let patterns = generator.generate(params.test_length);
            Counters::bump(&self.counters.fault_sim_passes, &FAULT_SIM_PASSES, 1);
            let built = SignatureDictionary::build_sweep_cached(
                self.session.context(),
                &compiled.circuit,
                &compiled.universe,
                &patterns,
                params.session_len,
                &[params.signature_width],
                &[params.test_length],
                self.session.config().lanes(),
                Some(self.session.good_machine_cache()),
            )
            .swap_remove(0)
            .swap_remove(0);
            self.artifacts.store(
                "sigdict",
                key,
                compiled.fingerprint,
                &encode_signature_dictionary(&built),
            );
            let dictionary = Rc::new(built);
            self.dictionaries
                .borrow_mut()
                .insert(key, dictionary.clone());
            dictionary
        };
        let report = AliasingReport::from_dictionary(&dictionary);
        let defect_level = |coverage: f64| {
            field_reject_rate(
                &model,
                FaultCoverage::new(coverage.clamp(0.0, 1.0)).expect("clamped into range"),
            )
            .value()
        };
        Ok(object(vec![
            ("circuit", string(&params.circuit)),
            ("universe_size", number(compiled.universe.len() as u64)),
            ("test_length", number(params.test_length as u64)),
            ("signature_width", number(u64::from(params.signature_width))),
            ("session_len", number(params.session_len as u64)),
            ("sessions", number(dictionary.sessions() as u64)),
            ("raw_coverage", JsonValue::Number(report.raw_coverage())),
            (
                "effective_coverage",
                JsonValue::Number(report.effective_coverage()),
            ),
            ("aliased", number(report.aliased as u64)),
            (
                "aliasing_fraction",
                JsonValue::Number(report.aliasing_fraction()),
            ),
            (
                "estimated_aliasing_fraction",
                JsonValue::Number(report.estimated_aliasing_fraction()),
            ),
            (
                "defect_level_raw",
                JsonValue::Number(defect_level(report.raw_coverage())),
            ),
            (
                "defect_level_effective",
                JsonValue::Number(defect_level(report.effective_coverage())),
            ),
        ]))
    }

    fn lot(&self, params: &LotParams, dense_rows: bool) -> Result<JsonValue, String> {
        Self::model_params(&params.model)?;
        let compiled = self.compiled(&params.circuit)?;
        let suite = self.line_suite(&compiled);
        let pattern_count = suite.coverage.pattern_count();
        let checkpoints: Vec<usize> = match &params.checkpoints {
            Some(points) => points.clone(),
            None if dense_rows => (1..=pattern_count).collect(),
            None => vec![pattern_count],
        };
        let seed = params
            .seed
            .unwrap_or_else(|| self.session.config().seed_or(PROGRAMME_SEED));
        let lot_config = ModelLotConfig {
            chips: params.chips,
            yield_fraction: params.model.yield_fraction,
            n0: params.model.n0,
            fault_universe_size: compiled.universe.len(),
            seed,
        };
        let mut executor = StreamingLotExecutor::with_context(self.session.context());
        if let Some(block_len) = params.block_len {
            executor = executor.with_block_len(block_len);
        }
        let streamed: StreamedLot = executor.stream_model_lot(
            &lot_config,
            &suite.dictionary,
            &suite.coverage,
            &checkpoints,
        );
        Counters::bump(
            &self.counters.chips_simulated,
            &CHIPS_SIMULATED,
            params.chips as u64,
        );
        let rows = streamed
            .experiment
            .rows()
            .iter()
            .map(|row| {
                object(vec![
                    ("patterns", number(row.patterns_applied as u64)),
                    ("coverage", JsonValue::Number(row.fault_coverage)),
                    ("chips_failed", number(row.chips_failed as u64)),
                    ("fraction_failed", JsonValue::Number(row.fraction_failed)),
                ])
            })
            .collect();
        Ok(object(vec![
            ("circuit", string(&params.circuit)),
            ("chips", number(params.chips as u64)),
            ("yield", JsonValue::Number(params.model.yield_fraction)),
            ("n0", JsonValue::Number(params.model.n0)),
            ("seed", number(seed)),
            ("universe_size", number(compiled.universe.len() as u64)),
            ("patterns", number(pattern_count as u64)),
            (
                "deterministic_patterns",
                number(suite.deterministic_patterns as u64),
            ),
            (
                "final_coverage",
                JsonValue::Number(suite.coverage.final_coverage()),
            ),
            ("observed_yield", JsonValue::Number(streamed.observed_yield)),
            ("observed_n0", JsonValue::Number(streamed.observed_n0)),
            ("shipped", number(streamed.outcome.shipped as u64)),
            ("escapes", number(streamed.outcome.escapes as u64)),
            ("rejected", number(streamed.outcome.rejected as u64)),
            (
                "field_reject_rate",
                JsonValue::Number(streamed.outcome.field_reject_rate()),
            ),
            ("rows", JsonValue::Array(rows)),
        ]))
    }
}

/// One `metrics` record: the registry delta attributable to the query on
/// `line`.  Emitted after the query's response under `LSIQ_METRICS=json`;
/// replay tooling strips `"status":"metrics"` records before transcript
/// comparison, exactly like summary records.
fn metrics_record(line: usize, delta: &Snapshot) -> JsonValue {
    JsonValue::Object(vec![
        ("status".to_string(), string("metrics")),
        ("line".to_string(), number(line as u64)),
        ("counters".to_string(), names_json(&delta.counters)),
        ("gauges".to_string(), names_json(&delta.gauges)),
        ("spans".to_string(), spans_json(&delta.spans)),
        ("histograms".to_string(), histograms_json(&delta.histograms)),
    ])
}

/// A full registry dump as one JSON object (the summary's `registry`).
fn snapshot_json(snapshot: &Snapshot) -> JsonValue {
    JsonValue::Object(vec![
        ("counters".to_string(), names_json(&snapshot.counters)),
        ("gauges".to_string(), names_json(&snapshot.gauges)),
        ("spans".to_string(), spans_json(&snapshot.spans)),
        (
            "histograms".to_string(),
            histograms_json(&snapshot.histograms),
        ),
    ])
}

fn names_json(entries: &[(String, u64)]) -> JsonValue {
    JsonValue::Object(
        entries
            .iter()
            .map(|(name, value)| (name.clone(), number(*value)))
            .collect(),
    )
}

fn spans_json(entries: &[(String, lsiq_obs::SpanStat)]) -> JsonValue {
    JsonValue::Object(
        entries
            .iter()
            .map(|(name, stat)| {
                (
                    name.clone(),
                    object(vec![
                        ("count", number(stat.count)),
                        ("total_ns", number(stat.total_ns)),
                    ]),
                )
            })
            .collect(),
    )
}

fn histograms_json(entries: &[(String, Vec<(u32, u64)>)]) -> JsonValue {
    JsonValue::Object(
        entries
            .iter()
            .map(|(name, buckets)| {
                (
                    name.clone(),
                    JsonValue::Object(
                        buckets
                            .iter()
                            .map(|(bucket, count)| (format!("2^{bucket}"), number(*count)))
                            .collect(),
                    ),
                )
            })
            .collect(),
    )
}
