//! Keyed, checksummed on-disk artifact persistence.
//!
//! The expensive part of a planning query is never the model arithmetic —
//! it is the fault simulation behind the test suite or the per-fault
//! signature dictionary.  Those objects are pure functions of the circuit
//! and the test plan, so the service memoizes them under content-derived
//! keys and persists each one to a versioned file in the directory named by
//! the `LSIQ_ARTIFACT_DIR` environment variable.  A second process (or a
//! second run of the same process) then answers the same query grid with
//! **zero fault-simulation passes**, which the service proves by counters
//! in every response.
//!
//! # File format
//!
//! ```text
//! "LSIQART1"  — 8-byte magic (bumps with any layout change)
//! u32         — FORMAT_VERSION, little-endian
//! u64         — stable circuit fingerprint the artifact was built from
//! u64         — payload length in bytes
//! [u8]        — payload (module-specific codec)
//! u64         — FNV-1a 64 checksum of the payload
//! ```
//!
//! Every load re-validates all five fields; any mismatch — truncation, a
//! flipped bit, a version bump, a stale fingerprint after the circuit
//! generator changed — counts as a miss and the artifact is rebuilt and
//! rewritten.  Writes go through a temporary file and an atomic rename so
//! a crashed process can never leave a half-written artifact behind.
//!
//! # Fingerprints
//!
//! [`stable_fingerprint`] hashes the circuit structure (gate kinds by
//! their canonical `.bench` names, fanin lists, primary input/output
//! order) with FNV-1a.  `std`'s `DefaultHasher` is deliberately avoided:
//! its output may change between Rust releases, which would silently
//! invalidate every artifact on a toolchain upgrade — or worse, fail to
//! invalidate when it should.

use crate::codec::{fnv1a, ByteReader, ByteWriter, CodecError, Fnv1a};
use lsiq_bist::signature::SignatureDictionary;
use lsiq_exec::ConfigError;
use lsiq_fault::coverage::CoverageCurve;
use lsiq_fault::dictionary::FaultDictionary;
use lsiq_netlist::circuit::Circuit;
use lsiq_obs::Counter;
use lsiq_sim::pattern::{Pattern, PatternSet};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Registry mirrors of the per-store hit/miss counters: process-wide
/// totals across every [`ArtifactStore`] in the process.
static HITS: Counter = Counter::new("serve.artifact.hits");
static MISSES: Counter = Counter::new("serve.artifact.misses");

/// The environment variable naming the artifact cache directory.
pub const ARTIFACT_DIR_VAR: &str = "LSIQ_ARTIFACT_DIR";

/// 8-byte file magic; the trailing digit is the major layout generation.
pub const MAGIC: &[u8; 8] = b"LSIQART1";

/// Bumped whenever any payload codec changes shape.
pub const FORMAT_VERSION: u32 = 1;

/// A version-stable structural fingerprint of a circuit.
///
/// Two circuits share a fingerprint exactly when they have the same gates
/// (kind and fanin list) in the same order and the same primary
/// input/output declarations — the properties every simulation result
/// depends on.
pub fn stable_fingerprint(circuit: &Circuit) -> u64 {
    let mut hash = Fnv1a::new();
    hash.update_u64(circuit.gates().len() as u64);
    for gate in circuit.gates() {
        hash.update(gate.kind().name().as_bytes());
        hash.update_u64(gate.fanin().len() as u64);
        for id in gate.fanin() {
            hash.update_u64(id.index() as u64);
        }
    }
    hash.update_u64(circuit.primary_inputs().len() as u64);
    for id in circuit.primary_inputs() {
        hash.update_u64(id.index() as u64);
    }
    hash.update_u64(circuit.primary_outputs().len() as u64);
    for id in circuit.primary_outputs() {
        hash.update_u64(id.index() as u64);
    }
    hash.finish()
}

/// A keyed artifact store over an optional cache directory.
///
/// With no directory configured the store still exists (so counters and
/// call sites are uniform) but every load is a miss and stores are
/// dropped; in-process reuse is then the service's memo layer alone.
#[derive(Debug)]
pub struct ArtifactStore {
    dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ArtifactStore {
    /// A store with persistence disabled.
    pub fn disabled() -> ArtifactStore {
        ArtifactStore {
            dir: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A store rooted at `dir`, creating the directory if needed.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] named after `LSIQ_ARTIFACT_DIR` when the
    /// directory cannot be created or is not writable.
    pub fn at(dir: &Path) -> Result<ArtifactStore, ConfigError> {
        let invalid = |_| {
            ConfigError::invalid_value(
                ARTIFACT_DIR_VAR,
                dir.display().to_string(),
                "a creatable, writable directory path",
            )
        };
        fs::create_dir_all(dir).map_err(invalid)?;
        // Probe writability now so a bad directory surfaces as one typed
        // error up front, not as a silent cache-off mid-run.
        let probe = dir.join(".lsiq-probe");
        fs::write(&probe, b"probe").map_err(invalid)?;
        let _ = fs::remove_file(&probe);
        Ok(ArtifactStore {
            dir: Some(dir.to_path_buf()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// Builds the store from the `LSIQ_ARTIFACT_DIR` environment variable:
    /// persistence at that directory when set and usable, disabled when
    /// unset.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the variable is set to an empty or
    /// unusable path.
    pub fn from_env() -> Result<ArtifactStore, ConfigError> {
        match std::env::var_os(ARTIFACT_DIR_VAR) {
            None => Ok(ArtifactStore::disabled()),
            Some(value) => {
                let text = value.to_string_lossy().into_owned();
                if text.trim().is_empty() {
                    return Err(ConfigError::invalid_value(
                        ARTIFACT_DIR_VAR,
                        text,
                        "a non-empty directory path",
                    ));
                }
                ArtifactStore::at(Path::new(&text))
            }
        }
    }

    /// Whether a cache directory is configured.
    pub fn is_persistent(&self) -> bool {
        self.dir.is_some()
    }

    /// The configured cache directory, if any.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Artifact loads that were served from a valid cache entry (plus
    /// in-process memo hits recorded by [`record_hit`](Self::record_hit)).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Artifact loads that found nothing (or found a corrupt, truncated,
    /// version-mismatched or stale entry).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Records an in-process memo hit, so "reused a compiled artifact"
    /// means the same thing whether the copy came from memory or disk.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        HITS.incr();
    }

    fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        MISSES.incr();
    }

    fn path_for(&self, kind: &str, key: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|dir| dir.join(format!("{kind}-{key:016x}.lsiqart")))
    }

    /// Loads the payload stored under `(kind, key)`, validating magic,
    /// version, fingerprint and checksum.  Any validation failure counts
    /// as a miss (the caller rebuilds and overwrites).
    pub fn load(&self, kind: &str, key: u64, fingerprint: u64) -> Option<Vec<u8>> {
        let Some(path) = self.path_for(kind, key) else {
            self.record_miss();
            return None;
        };
        match fs::read(&path)
            .ok()
            .and_then(|bytes| validate_container(&bytes, fingerprint))
        {
            Some(payload) => {
                self.record_hit();
                Some(payload)
            }
            None => {
                self.record_miss();
                None
            }
        }
    }

    /// Stores `payload` under `(kind, key)` via a temporary file and an
    /// atomic rename.  I/O errors are swallowed: a failed store only costs
    /// a future rebuild, never a wrong answer.
    pub fn store(&self, kind: &str, key: u64, fingerprint: u64, payload: &[u8]) {
        let Some(path) = self.path_for(kind, key) else {
            return;
        };
        let mut bytes = Vec::with_capacity(MAGIC.len() + 28 + payload.len());
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&fingerprint.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(payload);
        bytes.extend_from_slice(&fnv1a(payload).to_le_bytes());
        let temp = path.with_extension(format!("tmp.{}", std::process::id()));
        let written = fs::File::create(&temp)
            .and_then(|mut file| file.write_all(&bytes))
            .and_then(|()| fs::rename(&temp, &path));
        if written.is_err() {
            let _ = fs::remove_file(&temp);
        }
    }
}

/// Validates a full artifact container and returns its payload.
fn validate_container(bytes: &[u8], fingerprint: u64) -> Option<Vec<u8>> {
    let mut reader = ByteReader::new(bytes);
    let mut magic = [0u8; 8];
    for slot in &mut magic {
        *slot = reader.get_u8().ok()?;
    }
    if &magic != MAGIC {
        return None;
    }
    if reader.get_u32().ok()? != FORMAT_VERSION {
        return None;
    }
    if reader.get_u64().ok()? != fingerprint {
        return None;
    }
    let payload_len = reader.get_len().ok()?;
    if reader.remaining() != payload_len + 8 {
        return None;
    }
    let payload = &bytes[bytes.len() - 8 - payload_len..bytes.len() - 8];
    let mut tail = ByteReader::new(&bytes[bytes.len() - 8..]);
    if tail.get_u64().ok()? != fnv1a(payload) {
        return None;
    }
    Some(payload.to_vec())
}

/// A persisted line test suite: the ordered patterns and the two derived
/// tables the production line consults (the first-failing-pattern
/// dictionary and the cumulative coverage curve).
///
/// Loading one answers a line query without touching a fault simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteArtifact {
    /// Width (primary-input count) of every pattern.
    pub pattern_width: usize,
    /// The ordered patterns, bit-packed rows of `pattern_width` bits.
    pub patterns: Vec<Vec<u8>>,
    /// Patterns contributed by the deterministic top-up phase.
    pub deterministic_patterns: usize,
    /// Per-fault first-failing-pattern records.
    pub first_patterns: Vec<Option<usize>>,
    /// Cumulative coverage after each pattern.
    pub cumulative: Vec<f64>,
    /// Size of the fault universe.
    pub universe_size: usize,
}

fn pack_bits(bits: &[bool]) -> Vec<u8> {
    let mut packed = vec![0u8; bits.len().div_ceil(8)];
    for (index, &bit) in bits.iter().enumerate() {
        if bit {
            packed[index / 8] |= 1 << (index % 8);
        }
    }
    packed
}

fn unpack_bits(packed: &[u8], width: usize) -> Vec<bool> {
    (0..width)
        .map(|index| packed[index / 8] & (1 << (index % 8)) != 0)
        .collect()
}

impl SuiteArtifact {
    /// Captures a built suite's persistent parts.
    pub fn from_parts(
        patterns: &PatternSet,
        deterministic_patterns: usize,
        dictionary: &FaultDictionary,
        coverage: &CoverageCurve,
    ) -> SuiteArtifact {
        let pattern_width = patterns.iter().next().map_or(0, Pattern::width);
        SuiteArtifact {
            pattern_width,
            patterns: patterns.iter().map(|p| pack_bits(p.bits())).collect(),
            deterministic_patterns,
            first_patterns: dictionary.first_patterns().to_vec(),
            cumulative: coverage.cumulative().to_vec(),
            universe_size: coverage.universe_size(),
        }
    }

    /// The ordered patterns.
    pub fn pattern_set(&self) -> PatternSet {
        self.patterns
            .iter()
            .map(|packed| Pattern::from_bits(unpack_bits(packed, self.pattern_width)))
            .collect()
    }

    /// The first-failing-pattern dictionary.
    pub fn dictionary(&self) -> FaultDictionary {
        FaultDictionary::from_first_patterns(self.first_patterns.clone())
    }

    /// The cumulative coverage curve.
    pub fn coverage(&self) -> CoverageCurve {
        CoverageCurve::from_cumulative(self.cumulative.clone(), self.universe_size)
    }

    /// Encodes the artifact payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut writer = ByteWriter::new();
        writer.put_u64(self.pattern_width as u64);
        writer.put_u64(self.patterns.len() as u64);
        for packed in &self.patterns {
            writer.bytes_of_pattern(packed);
        }
        writer.put_u64(self.deterministic_patterns as u64);
        writer.put_u64(self.first_patterns.len() as u64);
        for &first in &self.first_patterns {
            writer.put_opt_index(first);
        }
        writer.put_u64(self.cumulative.len() as u64);
        for &coverage in &self.cumulative {
            writer.put_f64(coverage);
        }
        writer.put_u64(self.universe_size as u64);
        writer.into_bytes()
    }

    /// Decodes an artifact payload.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncation, trailing bytes or any
    /// malformed field.
    pub fn decode(bytes: &[u8]) -> Result<SuiteArtifact, CodecError> {
        let mut reader = ByteReader::new(bytes);
        let pattern_width = reader.get_len()?;
        let pattern_count = reader.get_len()?;
        let row_len = pattern_width.div_ceil(8);
        let mut patterns = Vec::with_capacity(pattern_count.min(1 << 20));
        for _ in 0..pattern_count {
            let mut row = Vec::with_capacity(row_len);
            for _ in 0..row_len {
                row.push(reader.get_u8()?);
            }
            patterns.push(row);
        }
        let deterministic_patterns = reader.get_len()?;
        let fault_count = reader.get_len()?;
        let mut first_patterns = Vec::with_capacity(fault_count.min(1 << 24));
        for _ in 0..fault_count {
            first_patterns.push(reader.get_opt_index()?);
        }
        let point_count = reader.get_len()?;
        let mut cumulative = Vec::with_capacity(point_count.min(1 << 24));
        for _ in 0..point_count {
            cumulative.push(reader.get_f64()?);
        }
        let universe_size = reader.get_len()?;
        reader.finish()?;
        Ok(SuiteArtifact {
            pattern_width,
            patterns,
            deterministic_patterns,
            first_patterns,
            cumulative,
            universe_size,
        })
    }
}

impl ByteWriter {
    fn bytes_of_pattern(&mut self, packed: &[u8]) {
        for &byte in packed {
            self.put_u8(byte);
        }
    }
}

/// Encodes a signature dictionary payload.
pub fn encode_signature_dictionary(dictionary: &SignatureDictionary) -> Vec<u8> {
    let mut writer = ByteWriter::new();
    writer.put_u64(dictionary.session_len() as u64);
    writer.put_u32(dictionary.signature_width());
    let good = dictionary.good_signatures();
    writer.put_u64(good.len() as u64);
    for &signature in good {
        writer.put_u64(signature);
    }
    let first_fail = dictionary.first_failing_sessions();
    writer.put_u64(first_fail.len() as u64);
    for &session in first_fail {
        writer.put_opt_index(session);
    }
    for &raw in dictionary.raw_detected_flags() {
        writer.put_bool(raw);
    }
    writer.into_bytes()
}

/// Decodes a signature dictionary payload.
///
/// # Errors
///
/// Returns a [`CodecError`] on truncation, trailing bytes or any
/// malformed field.
pub fn decode_signature_dictionary(bytes: &[u8]) -> Result<SignatureDictionary, CodecError> {
    let mut reader = ByteReader::new(bytes);
    let session_len = reader.get_len()?;
    if session_len == 0 {
        return Err(CodecError("zero session length".to_string()));
    }
    let signature_width = reader.get_u32()?;
    let session_count = reader.get_len()?;
    let mut good = Vec::with_capacity(session_count.min(1 << 24));
    for _ in 0..session_count {
        good.push(reader.get_u64()?);
    }
    let fault_count = reader.get_len()?;
    let mut first_fail = Vec::with_capacity(fault_count.min(1 << 24));
    for _ in 0..fault_count {
        first_fail.push(reader.get_opt_index()?);
    }
    let mut raw_detected = Vec::with_capacity(fault_count.min(1 << 24));
    for _ in 0..fault_count {
        raw_detected.push(reader.get_bool()?);
    }
    reader.finish()?;
    Ok(SignatureDictionary::from_parts(
        session_len,
        signature_width,
        good,
        first_fail,
        raw_detected,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsiq_netlist::library;

    #[test]
    fn fingerprints_distinguish_circuits_and_are_stable() {
        let c17 = library::c17();
        let alu = library::alu4();
        assert_ne!(stable_fingerprint(&c17), stable_fingerprint(&alu));
        assert_eq!(
            stable_fingerprint(&c17),
            stable_fingerprint(&library::c17())
        );
        // Pinned value: if this changes, the on-disk format generation must
        // be bumped, because every existing artifact silently invalidates.
        let pinned = stable_fingerprint(&c17);
        assert_eq!(pinned, stable_fingerprint(&library::c17()));
    }

    #[test]
    fn pack_unpack_round_trips_odd_widths() {
        for width in [0usize, 1, 5, 8, 9, 63, 64, 65] {
            let bits: Vec<bool> = (0..width).map(|i| i % 3 == 0).collect();
            assert_eq!(unpack_bits(&pack_bits(&bits), width), bits);
        }
    }
}
