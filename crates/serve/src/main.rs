//! The `lsiq-serve` binary: newline-delimited JSON planning queries in,
//! one JSON response per query plus a final summary record out.
//!
//! ```text
//! lsiq-serve [INPUT [OUTPUT]]
//! ```
//!
//! `INPUT`/`OUTPUT` default to `-` (stdin/stdout).  Configuration comes
//! from the `LSIQ_*` environment (`LSIQ_ARTIFACT_DIR` enables the on-disk
//! artifact cache; `LSIQ_ENGINE` defaults to `auto`).  Invalid
//! configuration and malformed (non-JSON) request lines exit with status 2
//! after printing a diagnostic; semantically invalid queries produce
//! per-line error responses and do not stop the stream.

use lsiq_serve::service::{QueryService, ServeError};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::process::ExitCode;

fn run() -> Result<(), ServeError> {
    let mut args = std::env::args().skip(1);
    let input = args.next().unwrap_or_else(|| "-".to_string());
    let output = args.next().unwrap_or_else(|| "-".to_string());
    if let Some(extra) = args.next() {
        return Err(ServeError::Io(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("unexpected argument {extra:?} (usage: lsiq-serve [INPUT [OUTPUT]])"),
        )));
    }
    let service = QueryService::from_env()?;
    let reader: Box<dyn Read> = if input == "-" {
        Box::new(io::stdin())
    } else {
        Box::new(File::open(&input).map_err(|error| {
            ServeError::Io(io::Error::new(
                error.kind(),
                format!("cannot open input {input:?}: {error}"),
            ))
        })?)
    };
    let writer: Box<dyn Write> = if output == "-" {
        Box::new(io::stdout())
    } else {
        Box::new(File::create(&output).map_err(|error| {
            ServeError::Io(io::Error::new(
                error.kind(),
                format!("cannot create output {output:?}: {error}"),
            ))
        })?)
    };
    service.run_lines(BufReader::new(reader), BufWriter::new(writer))
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("lsiq: {error}");
            ExitCode::from(2)
        }
    }
}
