//! Typed planning queries parsed from JSON-lines request objects.
//!
//! One request is one JSON object with an `"op"` field selecting the query
//! kind and an optional `"id"` echoed verbatim into the response, so a
//! client can correlate answers with a shuffled or batched grid.  The full
//! schema is documented in `docs/SERVICE.md`; the parser here is strict —
//! unknown ops, missing required fields and out-of-domain values all
//! produce a descriptive error string that the service turns into a
//! per-line error response (well-formed JSON that fails these checks is a
//! query error, not a protocol error, and does not abort the stream).

use crate::json::JsonValue;

/// The model parameters `(y, n0)` every query kind shares.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelInputs {
    /// The paper's `y`: probability a chip is fault-free.
    pub yield_fraction: f64,
    /// The paper's `n0`: mean fault count of a defective chip.
    pub n0: f64,
}

/// A `(test length, signature width)` BIST sweep cell.
#[derive(Debug, Clone, PartialEq)]
pub struct BistParams {
    /// Device name (`c17`, `alu4`, `reduced`, `full`).
    pub circuit: String,
    /// Model parameters for the defect-level columns.
    pub model: ModelInputs,
    /// Applied self-test pattern count.
    pub test_length: usize,
    /// MISR signature width `k`.
    pub signature_width: u32,
    /// Patterns per signature readout.
    pub session_len: usize,
    /// STUMPS scan channels feeding the device inputs.
    pub channels: usize,
}

/// A production-line / lot query: a lot of `chips` drawn at `(y, n0)`
/// tested against the device's line suite via the streaming executor.
#[derive(Debug, Clone, PartialEq)]
pub struct LotParams {
    /// Device name (`c17`, `alu4`, `reduced`, `full`).
    pub circuit: String,
    /// Chips in the lot.
    pub chips: usize,
    /// Model parameters of the lot generator.
    pub model: ModelInputs,
    /// Lot seed; defaults to the session seed (historically 1981).
    pub seed: Option<u64>,
    /// Reject-table checkpoints (pattern counts).  Defaults to every
    /// pattern for `line`, to the suite end alone for `lot`.
    pub checkpoints: Option<Vec<usize>>,
    /// Streaming block length override.
    pub block_len: Option<usize>,
}

/// One parsed planning query.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Eq. 8 forward: defect level at a given coverage.
    Forward {
        /// Model parameters.
        model: ModelInputs,
        /// Fault coverage `f`.
        coverage: f64,
    },
    /// Eq. 8 inverse: the coverage required for a reject-rate target.
    Inverse {
        /// Model parameters.
        model: ModelInputs,
        /// Field reject-rate target `r`.
        target_reject: f64,
    },
    /// One BIST sweep cell with aliasing-corrected defect levels.
    Bist(BistParams),
    /// A full production-line experiment (dense reject table).
    Line(LotParams),
    /// A streaming lot evaluation (sparse checkpoints, any lot size).
    Lot(LotParams),
}

impl Request {
    /// The op name, as it appears in requests and responses.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Forward { .. } => "forward",
            Request::Inverse { .. } => "inverse",
            Request::Bist(_) => "bist",
            Request::Line(_) => "line",
            Request::Lot(_) => "lot",
        }
    }

    /// Parses a request object, returning the query and its echoed `id`.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message when the object is not a valid query.
    pub fn parse(value: &JsonValue) -> Result<(Request, Option<JsonValue>), String> {
        if !matches!(value, JsonValue::Object(_)) {
            return Err("request must be a JSON object".to_string());
        }
        let id = value.get("id").cloned();
        let op = value
            .get("op")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "missing required string field \"op\"".to_string())?;
        let request = match op {
            "forward" => Request::Forward {
                model: model_inputs(value, true)?,
                coverage: fraction_field(value, "coverage", None)?,
            },
            "inverse" => Request::Inverse {
                model: model_inputs(value, true)?,
                target_reject: fraction_field(value, "target_reject", None)?,
            },
            "bist" => Request::Bist(BistParams {
                circuit: circuit_field(value)?,
                model: model_inputs(value, false)?,
                test_length: count_field(value, "test_length", None)?,
                signature_width: u32::try_from(count_field(value, "signature_width", None)?)
                    .map_err(|_| "\"signature_width\" out of range".to_string())?,
                session_len: count_field(value, "session_len", Some(64))?,
                channels: count_field(value, "channels", Some(8))?,
            }),
            "line" => Request::Line(lot_params(value, 277)?),
            "lot" => {
                let params = lot_params(value, 0)?;
                if value.get("chips").is_none() {
                    return Err("op \"lot\" requires a \"chips\" field".to_string());
                }
                Request::Lot(params)
            }
            other => {
                return Err(format!(
                    "unknown op {other:?} (expected forward, inverse, bist, line or lot)"
                ))
            }
        };
        Ok((request, id))
    }
}

fn lot_params(value: &JsonValue, default_chips: usize) -> Result<LotParams, String> {
    let checkpoints = match value.get("checkpoints") {
        None => None,
        Some(JsonValue::Array(items)) => {
            let mut points = Vec::with_capacity(items.len());
            for item in items {
                points.push(item.as_usize().ok_or_else(|| {
                    "\"checkpoints\" entries must be non-negative integers".to_string()
                })?);
            }
            Some(points)
        }
        Some(_) => return Err("\"checkpoints\" must be an array of integers".to_string()),
    };
    Ok(LotParams {
        circuit: circuit_field(value)?,
        chips: count_field(value, "chips", Some(default_chips))?,
        model: model_inputs(value, false)?,
        seed: match value.get("seed") {
            None => None,
            Some(seed) => Some(
                seed.as_usize()
                    .map(|v| v as u64)
                    .ok_or_else(|| "\"seed\" must be a non-negative integer".to_string())?,
            ),
        },
        checkpoints,
        block_len: match value.get("block_len") {
            None => None,
            Some(block) => Some(
                block
                    .as_usize()
                    .filter(|&len| len >= 1)
                    .ok_or_else(|| "\"block_len\" must be a positive integer".to_string())?,
            ),
        },
    })
}

fn model_inputs(value: &JsonValue, required: bool) -> Result<ModelInputs, String> {
    let defaults = if required { None } else { Some(0.07) };
    let yield_fraction = fraction_field(value, "yield", defaults)?;
    let n0 = match value.get("n0") {
        None if !required => 8.0,
        maybe => maybe
            .and_then(JsonValue::as_f64)
            .filter(|n0| n0.is_finite() && *n0 >= 1.0)
            .ok_or_else(|| "\"n0\" must be a finite number >= 1".to_string())?,
    };
    Ok(ModelInputs { yield_fraction, n0 })
}

fn fraction_field(value: &JsonValue, name: &str, default: Option<f64>) -> Result<f64, String> {
    match value.get(name) {
        None => default.ok_or_else(|| format!("missing required number field {name:?}")),
        Some(field) => field
            .as_f64()
            .filter(|v| v.is_finite() && (0.0..=1.0).contains(v))
            .ok_or_else(|| format!("{name:?} must be a number in [0, 1]")),
    }
}

fn count_field(value: &JsonValue, name: &str, default: Option<usize>) -> Result<usize, String> {
    match value.get(name) {
        None => default.ok_or_else(|| format!("missing required integer field {name:?}")),
        Some(field) => field
            .as_usize()
            .ok_or_else(|| format!("{name:?} must be a non-negative integer")),
    }
}

fn circuit_field(value: &JsonValue) -> Result<String, String> {
    match value.get("circuit") {
        None => Ok("reduced".to_string()),
        Some(field) => field
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| "\"circuit\" must be a string".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<(Request, Option<JsonValue>), String> {
        Request::parse(&JsonValue::parse(text).expect("well-formed JSON"))
    }

    #[test]
    fn forward_and_inverse_parse_with_required_fields() {
        let (request, id) =
            parse(r#"{"op":"forward","id":7,"yield":0.07,"n0":8,"coverage":0.95}"#).unwrap();
        assert_eq!(request.op(), "forward");
        assert_eq!(id, Some(JsonValue::Number(7.0)));
        match request {
            Request::Forward { model, coverage } => {
                assert_eq!(model.yield_fraction, 0.07);
                assert_eq!(model.n0, 8.0);
                assert_eq!(coverage, 0.95);
            }
            other => panic!("wrong variant {other:?}"),
        }
        let (request, _) =
            parse(r#"{"op":"inverse","yield":0.5,"n0":2,"target_reject":0.01}"#).unwrap();
        assert_eq!(request.op(), "inverse");
    }

    #[test]
    fn line_defaults_to_the_table1_grid_point() {
        let (request, id) = parse(r#"{"op":"line"}"#).unwrap();
        assert_eq!(id, None);
        match request {
            Request::Line(params) => {
                assert_eq!(params.circuit, "reduced");
                assert_eq!(params.chips, 277);
                assert_eq!(params.model.yield_fraction, 0.07);
                assert_eq!(params.model.n0, 8.0);
                assert_eq!(params.seed, None);
                assert_eq!(params.checkpoints, None);
            }
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn lot_requires_chips_and_accepts_checkpoints() {
        assert!(parse(r#"{"op":"lot"}"#).is_err());
        let (request, _) = parse(
            r#"{"op":"lot","circuit":"alu4","chips":1000000,"checkpoints":[16,64],"block_len":4096,"seed":3}"#,
        )
        .unwrap();
        match request {
            Request::Lot(params) => {
                assert_eq!(params.chips, 1_000_000);
                assert_eq!(params.checkpoints, Some(vec![16, 64]));
                assert_eq!(params.block_len, Some(4096));
                assert_eq!(params.seed, Some(3));
            }
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn invalid_requests_produce_descriptive_errors() {
        for (text, needle) in [
            (r#"[1,2]"#, "must be a JSON object"),
            (r#"{}"#, "\"op\""),
            (r#"{"op":"warp"}"#, "unknown op"),
            (r#"{"op":"forward","yield":0.1,"n0":8}"#, "coverage"),
            (
                r#"{"op":"forward","yield":1.5,"n0":8,"coverage":0.9}"#,
                "yield",
            ),
            (
                r#"{"op":"forward","yield":0.1,"n0":0.5,"coverage":0.9}"#,
                "n0",
            ),
            (r#"{"op":"bist","yield":0.1,"n0":8}"#, "test_length"),
            (r#"{"op":"line","chips":-1}"#, "chips"),
            (r#"{"op":"line","checkpoints":[1.5]}"#, "checkpoints"),
            (r#"{"op":"line","circuit":5}"#, "circuit"),
            (r#"{"op":"lot","chips":10,"block_len":0}"#, "block_len"),
        ] {
            let error = parse(text).expect_err(text);
            assert!(error.contains(needle), "{text}: {error}");
        }
    }
}
