//! A minimal JSON value, parser and writer.
//!
//! The service speaks newline-delimited JSON on plain byte streams.  The
//! workspace carries no external dependencies, so the few hundred lines of
//! JSON it needs live here: a strict recursive-descent parser (strings with
//! full escape handling including surrogate pairs, IEEE numbers, nesting
//! depth bounded) and a writer whose number formatting is **canonical** —
//! integers print without a fraction and every other finite `f64` prints in
//! Rust's shortest round-trip form.  Canonical output is what makes warm-
//! and cold-cache service runs byte-comparable: the same `f64` always
//! serializes to the same bytes, and parsing those bytes returns the same
//! `f64`.

use std::fmt::Write as _;

/// Parsing stops descending past this nesting depth (the service's own
/// records are at most 4 deep; hostile input should not blow the stack).
const MAX_DEPTH: usize = 64;

/// A JSON document.
///
/// Objects preserve insertion order (a `Vec` of pairs, not a map): the
/// service's responses are diffed byte-for-byte across runs, so key order
/// must be deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one JSON document, requiring it to span the whole input.
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            at: 0,
        };
        parser.skip_whitespace();
        let value = parser.value(0)?;
        parser.skip_whitespace();
        if parser.at != parser.bytes.len() {
            return Err(parser.error("trailing characters after the document"));
        }
        Ok(value)
    }

    /// The value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs
                .iter()
                .find(|(name, _)| name == key)
                .map(|(_, value)| value),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(text) => Some(text),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(value) => Some(*value),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer, if it is one exactly.
    pub fn as_usize(&self) -> Option<usize> {
        let value = self.as_f64()?;
        if value >= 0.0 && value.fract() == 0.0 && value <= (1u64 << 53) as f64 {
            Some(value as usize)
        } else {
            None
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(value) => Some(*value),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the document on one line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Number(value) => write_number(*value, out),
            JsonValue::String(text) => write_string(text, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (index, item) in items.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                out.push('{');
                for (index, (key, value)) in pairs.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Builds an object value from `(key, value)` pairs, preserving order.
pub fn object(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        pairs
            .into_iter()
            .map(|(key, value)| (key.to_string(), value))
            .collect(),
    )
}

/// A number value from an integer count.
pub fn number(value: u64) -> JsonValue {
    JsonValue::Number(value as f64)
}

/// A string value.
pub fn string(value: &str) -> JsonValue {
    JsonValue::String(value.to_string())
}

fn write_number(value: f64, out: &mut String) {
    if !value.is_finite() {
        // JSON has no NaN/Infinity; the service never produces them, but
        // degrade to null rather than emit invalid JSON.
        out.push_str("null");
    } else if value.fract() == 0.0 && value.abs() <= (1u64 << 53) as f64 {
        let _ = write!(out, "{}", value as i64);
    } else {
        // Rust's Debug form is the shortest string that round-trips the
        // exact f64 — the canonical form byte-diffing relies on.
        let _ = write!(out, "{value:?}");
    }
}

fn write_string(text: &str, out: &mut String) {
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            control if (control as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", control as u32);
            }
            other => out.push(other),
        }
    }
    out.push('"');
}

/// A syntax error with the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the line.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.at,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {word}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(&format!("unexpected character {:?}", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.at += 1;
                            let unit = self.hex4()?;
                            let ch = if (0xd800..0xdc00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() == Some(b'\\') {
                                    self.at += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&low) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
                                    char::from_u32(code)
                                        .ok_or_else(|| self.error("invalid surrogate pair"))?
                                } else {
                                    return Err(self.error("lone high surrogate"));
                                }
                            } else if (0xdc00..0xe000).contains(&unit) {
                                return Err(self.error("lone low surrogate"));
                            } else {
                                char::from_u32(unit).ok_or_else(|| self.error("invalid escape"))?
                            };
                            out.push(ch);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.at += 1;
                }
                Some(byte) if byte < 0x20 => {
                    return Err(self.error("raw control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // boundaries are valid).
                    let rest = &self.bytes[self.at..];
                    let text = std::str::from_utf8(rest).map_err(|_| self.error("bad UTF-8"))?;
                    let ch = text.chars().next().expect("non-empty");
                    out.push(ch);
                    self.at += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(byte @ b'0'..=b'9') => (byte - b'0') as u32,
                Some(byte @ b'a'..=b'f') => (byte - b'a') as u32 + 10,
                Some(byte @ b'A'..=b'F') => (byte - b'A') as u32 + 10,
                _ => return Err(self.error("expected four hex digits")),
            };
            value = value * 16 + digit;
            self.at += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        let digits_before = self.digits();
        if digits_before == 0 {
            return Err(self.error("expected a digit"));
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            if self.digits() == 0 {
                return Err(self.error("expected a fraction digit"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            if self.digits() == 0 {
                return Err(self.error("expected an exponent digit"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ASCII number");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.error("number out of range"))
    }

    fn digits(&mut self) -> usize {
        let start = self.at;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.at += 1;
        }
        self.at - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let text = r#"{"op":"line","grid":[1,2.5,-3e2],"ok":true,"none":null,"name":"a\"b\\c\nd"}"#;
        let value = JsonValue::parse(text).expect("valid document");
        let reparsed = JsonValue::parse(&value.to_line()).expect("writer output is valid");
        assert_eq!(value, reparsed);
        assert_eq!(value.get("op").and_then(JsonValue::as_str), Some("line"));
        assert_eq!(
            value
                .get("grid")
                .and_then(JsonValue::as_array)
                .map(<[_]>::len),
            Some(3)
        );
        assert_eq!(value.get("ok").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(value.get("none"), Some(&JsonValue::Null));
    }

    #[test]
    fn number_output_is_canonical_and_round_trips() {
        for value in [
            0.0,
            1.0,
            -13.0,
            277.0,
            0.07,
            0.1,
            8.695719103668,
            1e-9,
            f64::MIN_POSITIVE,
        ] {
            let line = JsonValue::Number(value).to_line();
            let back = JsonValue::parse(&line).expect("canonical number parses");
            assert_eq!(
                back.as_f64().map(f64::to_bits),
                Some(value.to_bits()),
                "{line}"
            );
            // Canonical: serializing again produces identical bytes.
            assert_eq!(back.to_line(), line);
        }
        assert_eq!(JsonValue::Number(277.0).to_line(), "277");
        assert_eq!(JsonValue::Number(0.07).to_line(), "0.07");
    }

    #[test]
    fn unicode_escapes_and_surrogate_pairs_parse() {
        let value = JsonValue::parse("\"\\u0041\\u00e9\\ud83d\\ude00\"").expect("escapes");
        assert_eq!(value.as_str(), Some("Aé😀"));
        let raw = JsonValue::parse(r#""Aé😀""#).expect("raw UTF-8");
        assert_eq!(raw.as_str(), Some("Aé😀"));
        assert!(JsonValue::parse(r#""\ud83d""#).is_err(), "lone surrogate");
        assert!(
            JsonValue::parse(r#""\udc00""#).is_err(),
            "lone low surrogate"
        );
    }

    #[test]
    fn malformed_documents_error_without_panicking() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "nul",
            "1.2.3",
            "\"unterminated",
            "{\"a\":1} trailing",
            "01e",
            "-",
            "{\"a\" 1}",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(JsonValue::parse(&deep).is_err());
    }

    #[test]
    fn as_usize_accepts_exact_integers_only() {
        assert_eq!(JsonValue::Number(64.0).as_usize(), Some(64));
        assert_eq!(JsonValue::Number(-1.0).as_usize(), None);
        assert_eq!(JsonValue::Number(1.5).as_usize(), None);
        assert_eq!(JsonValue::String("64".into()).as_usize(), None);
    }
}
