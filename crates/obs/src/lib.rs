//! `lsiq-obs`: the workspace telemetry layer.
//!
//! A zero-dependency metrics registry (named counters, gauges and
//! histograms) plus a hierarchical [`Span`] timer, shared by every crate
//! in the stack.  The design goals, in order:
//!
//! 1. **Disabled mode is free.**  Every recording call is gated on one
//!    relaxed atomic load ([`enabled`]).  With `LSIQ_METRICS=off` (the
//!    default) no clock is read, no cache line is written and no lock is
//!    taken anywhere — the `obs_overhead` bench group pins this.
//! 2. **Recording never changes results.**  Telemetry only *observes*;
//!    every numeric output of the stack is byte-identical with metrics on
//!    or off, at every worker count (enforced by the differential suites).
//! 3. **Totals are worker-count invariant.**  Counters are sharded across
//!    cache-line-padded cells indexed by a per-thread worker slot (set by
//!    the `lsiq-exec` pool), so concurrent increments never contend on one
//!    line; a snapshot merges the shards, and because addition commutes
//!    the merged totals are identical at any worker count for counters
//!    placed at semantically invariant points (per fault, per chunk, per
//!    drop).  Pool-shape counters (`pool.jobs`, `pool.park_ns`, …)
//!    legitimately vary with the ladder and are documented as such.
//!
//! Series are registered lazily on first use from `static` handles:
//!
//! ```
//! use lsiq_obs::{Counter, Span};
//!
//! static CHUNKS: Counter = Counter::new("demo.good_chunks");
//! static PHASE: Span = Span::new("engine.demo.good_machine");
//!
//! lsiq_obs::set_mode(lsiq_obs::MetricsMode::Json);
//! {
//!     let _phase = PHASE.start();
//!     CHUNKS.add(3);
//! }
//! let snapshot = lsiq_obs::snapshot();
//! assert!(snapshot.counter("demo.good_chunks") >= 3);
//! lsiq_obs::set_mode(lsiq_obs::MetricsMode::Off);
//! ```
//!
//! The registry is process-global: [`snapshot`] returns a deterministic
//! (name-sorted) [`Snapshot`], [`Snapshot::delta_since`] supports the
//! per-query records of `lsiq-serve`, and [`report::render_tree`] renders
//! the human-readable self-time tree printed by the bench binaries under
//! `LSIQ_METRICS=tree`.  See `docs/OBSERVABILITY.md` for the metric name
//! catalogue.

pub mod registry;
pub mod report;
pub mod span;

pub use registry::{Counter, Gauge, Histogram, Snapshot, SpanStat};
pub use span::{Span, SpanGuard};

use std::sync::atomic::{AtomicU8, Ordering};

/// How telemetry is recorded and exposed (`LSIQ_METRICS`).
///
/// `Json` and `Tree` both enable recording; they differ only in how the
/// front-ends *expose* the registry (`lsiq-serve` emits `metrics` records
/// and a registry dump under `json`; the bench binaries print the
/// [`report::render_tree`] report to stderr under `tree`).  `Off` (the
/// default) reduces every recording call to a single relaxed load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum MetricsMode {
    /// No recording; the disabled path is a single relaxed atomic load.
    #[default]
    Off = 0,
    /// Record, and expose machine-readable dumps (serve `metrics` records).
    Json = 1,
    /// Record, and print the human-readable span tree report.
    Tree = 2,
}

impl MetricsMode {
    /// Every mode, in documentation order.
    pub const ALL: [MetricsMode; 3] = [MetricsMode::Off, MetricsMode::Json, MetricsMode::Tree];

    /// The knob spelling of the mode.
    pub fn name(self) -> &'static str {
        match self {
            MetricsMode::Off => "off",
            MetricsMode::Json => "json",
            MetricsMode::Tree => "tree",
        }
    }

    /// Parses a knob spelling (`off` / `json` / `tree`), case-insensitive.
    pub fn from_name(name: &str) -> Option<MetricsMode> {
        MetricsMode::ALL
            .into_iter()
            .find(|mode| mode.name().eq_ignore_ascii_case(name))
    }

    /// Whether this mode records telemetry at all.
    pub fn records(self) -> bool {
        self != MetricsMode::Off
    }
}

impl std::fmt::Display for MetricsMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The process-global mode flag.  `0` is [`MetricsMode::Off`], so the
/// disabled check compiles to one relaxed load and a zero test.
static MODE: AtomicU8 = AtomicU8::new(0);

/// Sets the process-global metrics mode.  Called by `Session::new` from
/// the session's `RunConfig` (which parses `LSIQ_METRICS`) and by tests;
/// safe to call at any time from any thread.
pub fn set_mode(mode: MetricsMode) {
    MODE.store(mode as u8, Ordering::Relaxed);
}

/// The current process-global metrics mode.
pub fn mode() -> MetricsMode {
    match MODE.load(Ordering::Relaxed) {
        1 => MetricsMode::Json,
        2 => MetricsMode::Tree,
        _ => MetricsMode::Off,
    }
}

/// Whether telemetry recording is enabled.  This is the entire cost of
/// every `Counter::add` / `Span::start` call in the default `off` mode.
#[inline(always)]
pub fn enabled() -> bool {
    MODE.load(Ordering::Relaxed) != 0
}

/// Takes a deterministic, name-sorted snapshot of every registered series.
pub fn snapshot() -> Snapshot {
    registry::snapshot()
}

/// Zeroes every registered series (totals, buckets and span stats).  The
/// registry itself (names, registration order) is preserved.  Intended
/// for tests that compare totals across configurations in one process.
pub fn reset() {
    registry::reset()
}

/// Binds the calling thread to a counter shard.  The `lsiq-exec` pool
/// assigns slot `worker_index + 1` to each worker thread (slot 0 is every
/// unbound thread, including the caller participating in a scope), so
/// concurrent workers increment disjoint cache lines.
pub fn set_worker_slot(slot: usize) {
    registry::set_worker_slot(slot)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names_round_trip() {
        for mode in MetricsMode::ALL {
            assert_eq!(MetricsMode::from_name(mode.name()), Some(mode));
            assert_eq!(
                MetricsMode::from_name(&mode.name().to_uppercase()),
                Some(mode)
            );
        }
        assert_eq!(MetricsMode::from_name("verbose"), None);
        assert_eq!(MetricsMode::default(), MetricsMode::Off);
        assert!(!MetricsMode::Off.records());
        assert!(MetricsMode::Json.records());
        assert!(MetricsMode::Tree.records());
    }

    #[test]
    fn mode_flag_round_trips_through_the_global() {
        // Runs in the same process as every other test, so serialize on
        // the shared mode lock and restore Off before releasing it.
        let _guard = crate::registry::tests::MODE_LOCK
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        set_mode(MetricsMode::Tree);
        assert_eq!(mode(), MetricsMode::Tree);
        assert!(enabled());
        set_mode(MetricsMode::Off);
        assert_eq!(mode(), MetricsMode::Off);
        assert!(!enabled());
    }
}
