//! The process-global metrics registry.
//!
//! Series are interned by `&'static str` name on first use and live for
//! the process lifetime (the cells are leaked once, never per call).
//! Counters and span stats are sharded over [`SHARDS`]
//! cache-line-padded atomic cells indexed by the calling thread's worker
//! slot, so pool workers never contend on one line; a [`crate::snapshot`] merges
//! the shards, and because addition commutes the merged totals do not
//! depend on which thread recorded what.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::sync::OnceLock;
use std::time::Duration;

/// Counter/span shard count.  A power of two; worker slots beyond it wrap
/// (sharing a line again, which is merely slower, never wrong).
pub const SHARDS: usize = 16;

/// Histogram bucket count: bucket 0 counts zero values, bucket `i >= 1`
/// counts values in `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

thread_local! {
    static WORKER_SLOT: Cell<usize> = const { Cell::new(0) };
}

pub(crate) fn set_worker_slot(slot: usize) {
    WORKER_SLOT.with(|cell| cell.set(slot & (SHARDS - 1)));
}

#[inline]
fn shard_index() -> usize {
    WORKER_SLOT.with(|cell| cell.get())
}

/// One cache line holding one shard's total.
#[repr(align(64))]
#[derive(Default)]
struct PaddedCell(AtomicU64);

/// Sharded monotonic total (counters, span counts, span nanoseconds).
#[derive(Default)]
struct ShardedTotal {
    shards: [PaddedCell; SHARDS],
}

impl ShardedTotal {
    #[inline]
    fn add(&self, value: u64) {
        self.shards[shard_index()]
            .0
            .fetch_add(value, Ordering::Relaxed);
    }

    fn sum(&self) -> u64 {
        self.shards
            .iter()
            .map(|cell| cell.0.load(Ordering::Relaxed))
            .sum()
    }

    fn reset(&self) {
        for cell in &self.shards {
            cell.0.store(0, Ordering::Relaxed);
        }
    }
}

#[derive(Default)]
pub(crate) struct CounterCell {
    total: ShardedTotal,
}

#[derive(Default)]
pub(crate) struct GaugeCell {
    value: AtomicU64,
}

pub(crate) struct HistogramCell {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramCell {
    fn default() -> HistogramCell {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

#[derive(Default)]
pub(crate) struct SpanCell {
    count: ShardedTotal,
    total_ns: ShardedTotal,
}

impl SpanCell {
    #[inline]
    pub(crate) fn record(&self, elapsed: Duration) {
        self.count.add(1);
        self.total_ns.add(elapsed.as_nanos() as u64);
    }
}

/// The registry: one entry per (kind, name), in registration order.
#[derive(Default)]
struct Registry {
    counters: Vec<(&'static str, &'static CounterCell)>,
    gauges: Vec<(&'static str, &'static GaugeCell)>,
    histograms: Vec<(&'static str, &'static HistogramCell)>,
    spans: Vec<(&'static str, &'static SpanCell)>,
}

static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn with_registry<T>(f: impl FnOnce(&mut Registry) -> T) -> T {
    let mut guard = REGISTRY.lock().unwrap_or_else(|poison| poison.into_inner());
    f(guard.get_or_insert_with(Registry::default))
}

fn intern<C: Default>(
    entries: impl FnOnce(&mut Registry) -> &mut Vec<(&'static str, &'static C)>,
    name: &'static str,
) -> &'static C {
    with_registry(|registry| {
        let entries = entries(registry);
        if let Some((_, cell)) = entries.iter().find(|(existing, _)| *existing == name) {
            cell
        } else {
            let cell: &'static C = Box::leak(Box::default());
            entries.push((name, cell));
            cell
        }
    })
}

/// A named monotonic counter.  Declare as a `static`; the registry entry
/// is interned on first recorded increment.  Two handles with the same
/// name (even across crates) share one total.
pub struct Counter {
    name: &'static str,
    cell: OnceLock<&'static CounterCell>,
}

impl Counter {
    /// A handle on the counter called `name`.
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            cell: OnceLock::new(),
        }
    }

    fn cell(&self) -> &'static CounterCell {
        self.cell
            .get_or_init(|| intern(|r| &mut r.counters, self.name))
    }

    /// Adds `value` when telemetry is enabled; a single relaxed load
    /// otherwise.
    #[inline]
    pub fn add(&self, value: u64) {
        if crate::enabled() && value != 0 {
            self.cell().total.add(value);
        }
    }

    /// Increments by one (gated like [`add`](Counter::add)).
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The merged total so far (readable regardless of mode).
    pub fn value(&self) -> u64 {
        self.cell().total.sum()
    }
}

/// A named last-write-wins gauge.
pub struct Gauge {
    name: &'static str,
    cell: OnceLock<&'static GaugeCell>,
}

impl Gauge {
    /// A handle on the gauge called `name`.
    pub const fn new(name: &'static str) -> Gauge {
        Gauge {
            name,
            cell: OnceLock::new(),
        }
    }

    fn cell(&self) -> &'static GaugeCell {
        self.cell
            .get_or_init(|| intern(|r| &mut r.gauges, self.name))
    }

    /// Stores `value` when telemetry is enabled.
    #[inline]
    pub fn set(&self, value: u64) {
        if crate::enabled() {
            self.cell().value.store(value, Ordering::Relaxed);
        }
    }

    /// The last stored value.
    pub fn value(&self) -> u64 {
        self.cell().value.load(Ordering::Relaxed)
    }
}

/// A named power-of-two histogram: bucket 0 counts zeros, bucket `i`
/// counts values in `[2^(i-1), 2^i)`.
pub struct Histogram {
    name: &'static str,
    cell: OnceLock<&'static HistogramCell>,
}

impl Histogram {
    /// A handle on the histogram called `name`.
    pub const fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            cell: OnceLock::new(),
        }
    }

    fn cell(&self) -> &'static HistogramCell {
        self.cell
            .get_or_init(|| intern(|r| &mut r.histograms, self.name))
    }

    /// The bucket index of `value`.
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Records one observation when telemetry is enabled.
    #[inline]
    pub fn observe(&self, value: u64) {
        if crate::enabled() {
            self.cell().buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total observation count so far.
    pub fn count(&self) -> u64 {
        self.cell()
            .buckets
            .iter()
            .map(|bucket| bucket.load(Ordering::Relaxed))
            .sum()
    }
}

pub(crate) fn span_cell(name: &'static str) -> &'static SpanCell {
    intern(|r| &mut r.spans, name)
}

/// The merged statistics of one span name: how many times it ran and the
/// total wall time across all runs (summed over every recording thread,
/// so nested parallel phases can exceed their parent's wall time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStat {
    /// Completed runs of the span.
    pub count: u64,
    /// Total nanoseconds across all runs and threads.
    pub total_ns: u64,
}

/// A deterministic, name-sorted copy of the registry at one instant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// `(name, merged total)`, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)`, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// `(name, nonzero buckets as (bucket index, count))`, sorted by name.
    pub histograms: Vec<(String, Vec<(u32, u64)>)>,
    /// `(name, stat)`, sorted by name.
    pub spans: Vec<(String, SpanStat)>,
}

impl Snapshot {
    /// The counter total under `name`, `0` when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(entry, _)| entry == name)
            .map(|(_, value)| *value)
            .unwrap_or(0)
    }

    /// The span stat under `name`, zeros when absent.
    pub fn span(&self, name: &str) -> SpanStat {
        self.spans
            .iter()
            .find(|(entry, _)| entry == name)
            .map(|(_, stat)| *stat)
            .unwrap_or_default()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|(_, value)| *value == 0)
            && self.gauges.is_empty()
            && self
                .histograms
                .iter()
                .all(|(_, buckets)| buckets.is_empty())
            && self.spans.iter().all(|(_, stat)| stat.count == 0)
    }

    /// What happened between `earlier` and `self`: counter/histogram/span
    /// entries with a nonzero difference (gauges report their current
    /// value).  Series absent from `earlier` count from zero.
    pub fn delta_since(&self, earlier: &Snapshot) -> Snapshot {
        let earlier_counters: BTreeMap<&str, u64> = earlier
            .counters
            .iter()
            .map(|(name, value)| (name.as_str(), *value))
            .collect();
        let counters = self
            .counters
            .iter()
            .filter_map(|(name, value)| {
                let diff = value.saturating_sub(*earlier_counters.get(name.as_str()).unwrap_or(&0));
                (diff != 0).then(|| (name.clone(), diff))
            })
            .collect();
        let earlier_spans: BTreeMap<&str, SpanStat> = earlier
            .spans
            .iter()
            .map(|(name, stat)| (name.as_str(), *stat))
            .collect();
        let spans = self
            .spans
            .iter()
            .filter_map(|(name, stat)| {
                let base = earlier_spans
                    .get(name.as_str())
                    .copied()
                    .unwrap_or_default();
                let diff = SpanStat {
                    count: stat.count.saturating_sub(base.count),
                    total_ns: stat.total_ns.saturating_sub(base.total_ns),
                };
                (diff.count != 0 || diff.total_ns != 0).then(|| (name.clone(), diff))
            })
            .collect();
        let earlier_histograms: BTreeMap<&str, &Vec<(u32, u64)>> = earlier
            .histograms
            .iter()
            .map(|(name, buckets)| (name.as_str(), buckets))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .filter_map(|(name, buckets)| {
                let base: BTreeMap<u32, u64> = earlier_histograms
                    .get(name.as_str())
                    .map(|buckets| buckets.iter().copied().collect())
                    .unwrap_or_default();
                let diff: Vec<(u32, u64)> = buckets
                    .iter()
                    .filter_map(|(bucket, count)| {
                        let diff = count.saturating_sub(*base.get(bucket).unwrap_or(&0));
                        (diff != 0).then_some((*bucket, diff))
                    })
                    .collect();
                (!diff.is_empty()).then(|| (name.clone(), diff))
            })
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
            spans,
        }
    }
}

pub(crate) fn snapshot() -> Snapshot {
    let mut snapshot = with_registry(|registry| Snapshot {
        counters: registry
            .counters
            .iter()
            .map(|(name, cell)| (name.to_string(), cell.total.sum()))
            .collect(),
        gauges: registry
            .gauges
            .iter()
            .map(|(name, cell)| (name.to_string(), cell.value.load(Ordering::Relaxed)))
            .collect(),
        histograms: registry
            .histograms
            .iter()
            .map(|(name, cell)| {
                let buckets = cell
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(index, bucket)| {
                        let count = bucket.load(Ordering::Relaxed);
                        (count != 0).then_some((index as u32, count))
                    })
                    .collect();
                (name.to_string(), buckets)
            })
            .collect(),
        spans: registry
            .spans
            .iter()
            .map(|(name, cell)| {
                (
                    name.to_string(),
                    SpanStat {
                        count: cell.count.sum(),
                        total_ns: cell.total_ns.sum(),
                    },
                )
            })
            .collect(),
    });
    snapshot.counters.sort_by(|a, b| a.0.cmp(&b.0));
    snapshot.gauges.sort_by(|a, b| a.0.cmp(&b.0));
    snapshot.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    snapshot.spans.sort_by(|a, b| a.0.cmp(&b.0));
    snapshot
}

pub(crate) fn reset() {
    with_registry(|registry| {
        for (_, cell) in &registry.counters {
            cell.total.reset();
        }
        for (_, cell) in &registry.gauges {
            cell.value.store(0, Ordering::Relaxed);
        }
        for (_, cell) in &registry.histograms {
            for bucket in &cell.buckets {
                bucket.store(0, Ordering::Relaxed);
            }
        }
        for (_, cell) in &registry.spans {
            cell.count.reset();
            cell.total_ns.reset();
        }
    })
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::MetricsMode;

    /// Tests in this binary share the process-global mode flag, so every
    /// test that enables recording serializes on this lock and restores
    /// `Off` before releasing it.
    pub(crate) static MODE_LOCK: Mutex<()> = Mutex::new(());

    pub(crate) fn recording<T>(f: impl FnOnce() -> T) -> T {
        let _guard = MODE_LOCK
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        crate::set_mode(MetricsMode::Json);
        let result = f();
        crate::set_mode(MetricsMode::Off);
        result
    }

    #[test]
    fn disabled_mode_records_nothing() {
        static IGNORED: Counter = Counter::new("test.registry.disabled");
        let _guard = MODE_LOCK
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        crate::set_mode(MetricsMode::Off);
        IGNORED.add(41);
        IGNORED.incr();
        assert_eq!(IGNORED.value(), 0);
    }

    #[test]
    fn counters_merge_across_shards_and_threads() {
        static TOTAL: Counter = Counter::new("test.registry.sharded");
        recording(|| {
            std::thread::scope(|scope| {
                for slot in 0..4 {
                    scope.spawn(move || {
                        crate::set_worker_slot(slot);
                        for _ in 0..1000 {
                            TOTAL.incr();
                        }
                    });
                }
            });
            assert_eq!(TOTAL.value(), 4000);
        });
    }

    #[test]
    fn same_name_handles_share_one_total() {
        static A: Counter = Counter::new("test.registry.shared");
        static B: Counter = Counter::new("test.registry.shared");
        recording(|| {
            A.add(2);
            B.add(3);
            assert_eq!(A.value(), B.value());
            assert!(A.value() >= 5);
        });
    }

    #[test]
    fn gauges_store_the_last_value() {
        static WORKERS: Gauge = Gauge::new("test.registry.gauge");
        recording(|| {
            WORKERS.set(8);
            WORKERS.set(3);
            assert_eq!(WORKERS.value(), 3);
        });
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        static LATENCY: Histogram = Histogram::new("test.registry.histogram");
        recording(|| {
            for value in [0, 1, 2, 3, 900] {
                LATENCY.observe(value);
            }
            assert_eq!(LATENCY.count(), 5);
        });
    }

    #[test]
    fn snapshot_is_sorted_and_deltas_subtract() {
        static FIRST: Counter = Counter::new("test.snapshot.alpha");
        static SECOND: Counter = Counter::new("test.snapshot.beta");
        recording(|| {
            FIRST.incr();
            let before = crate::snapshot();
            SECOND.add(7);
            FIRST.add(2);
            let after = crate::snapshot();
            let names: Vec<&String> = after.counters.iter().map(|(name, _)| name).collect();
            let mut sorted = names.clone();
            sorted.sort();
            assert_eq!(names, sorted);
            let delta = after.delta_since(&before);
            assert_eq!(delta.counter("test.snapshot.alpha"), 2);
            assert_eq!(delta.counter("test.snapshot.beta"), 7);
            assert!(delta.counters.iter().all(|(_, value)| *value != 0));
        });
    }
}
