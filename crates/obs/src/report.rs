//! Human-readable rendering of a [`Snapshot`]: the self-time span tree
//! printed by the bench binaries under `LSIQ_METRICS=tree`.

use crate::registry::{Snapshot, SpanStat};

/// Formats nanoseconds with an adaptive unit (`ns`, `µs`, `ms`, `s`).
pub fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// One resolved node of the span tree: the indices of its children in
/// the snapshot's span list.
struct Node {
    children: Vec<usize>,
}

/// Builds the parent relation over dotted span names: `a.b.c` is a child
/// of the longest *registered* proper dotted prefix (`a.b`, else `a`);
/// names with no registered prefix are roots.  Input is name-sorted, so
/// children come out name-sorted too.
fn build_tree(spans: &[(String, SpanStat)]) -> (Vec<usize>, Vec<Node>) {
    let mut nodes: Vec<Node> = (0..spans.len())
        .map(|_| Node {
            children: Vec::new(),
        })
        .collect();
    let mut roots: Vec<usize> = Vec::new();
    for index in 0..spans.len() {
        let name = spans[index].0.as_str();
        let mut parent: Option<usize> = None;
        let mut boundary = name.len();
        while let Some(dot) = name[..boundary].rfind('.') {
            boundary = dot;
            if let Some(found) = spans
                .iter()
                .position(|(candidate, _)| candidate.as_str() == &name[..boundary])
            {
                parent = Some(found);
                break;
            }
        }
        match parent {
            Some(parent) => nodes[parent].children.push(index),
            None => roots.push(index),
        }
    }
    (roots, nodes)
}

fn render_span(
    out: &mut String,
    spans: &[(String, SpanStat)],
    nodes: &[Node],
    index: usize,
    depth: usize,
) {
    let (name, stat) = &spans[index];
    let node = &nodes[index];
    let children_ns: u64 = node
        .children
        .iter()
        .map(|&child| spans[child].1.total_ns)
        .sum();
    // A parallel child phase folds wall time from every worker, so the
    // children's sum can exceed the parent's wall time; clamp at zero.
    let self_ns = stat.total_ns.saturating_sub(children_ns);
    let label = format!("{:indent$}{name}", "", indent = depth * 2);
    out.push_str(&format!(
        "  {label:<44} total {:>10}  self {:>10}  count {}\n",
        format_ns(stat.total_ns),
        format_ns(self_ns),
        stat.count,
    ));
    for &child in &node.children {
        render_span(out, spans, nodes, child, depth + 1);
    }
}

/// Renders the snapshot as the human-readable report: the span self-time
/// tree, then counters, gauges and histograms, all name-sorted.  Series
/// that never recorded are omitted; an all-empty snapshot renders a
/// one-line notice.
pub fn render_tree(snapshot: &Snapshot) -> String {
    let mut out = String::from("== lsiq metrics ==\n");
    let spans: Vec<(String, SpanStat)> = snapshot
        .spans
        .iter()
        .filter(|(_, stat)| stat.count != 0)
        .cloned()
        .collect();
    if !spans.is_empty() {
        out.push_str("spans (total across threads; self = total - children):\n");
        let (roots, nodes) = build_tree(&spans);
        for root in roots {
            render_span(&mut out, &spans, &nodes, root, 0);
        }
    }
    let counters: Vec<&(String, u64)> = snapshot
        .counters
        .iter()
        .filter(|(_, value)| *value != 0)
        .collect();
    if !counters.is_empty() {
        out.push_str("counters:\n");
        for (name, value) in counters {
            out.push_str(&format!("  {name:<44} {value}\n"));
        }
    }
    if !snapshot.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, value) in &snapshot.gauges {
            out.push_str(&format!("  {name:<44} {value}\n"));
        }
    }
    let histograms: Vec<&(String, Vec<(u32, u64)>)> = snapshot
        .histograms
        .iter()
        .filter(|(_, buckets)| !buckets.is_empty())
        .collect();
    if !histograms.is_empty() {
        out.push_str("histograms (bucket i counts values in [2^(i-1), 2^i)):\n");
        for (name, buckets) in histograms {
            let total: u64 = buckets.iter().map(|(_, count)| count).sum();
            let cells: Vec<String> = buckets
                .iter()
                .map(|(bucket, count)| format!("2^{bucket}:{count}"))
                .collect();
            out.push_str(&format!(
                "  {name:<44} count {total}  {}\n",
                cells.join(" ")
            ));
        }
    }
    if out.lines().count() == 1 {
        out.push_str("  (nothing recorded — is LSIQ_METRICS enabled?)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_adaptive_units() {
        assert_eq!(format_ns(12), "12ns");
        assert_eq!(format_ns(1_500), "1.500µs");
        assert_eq!(format_ns(2_000_000), "2.000ms");
        assert_eq!(format_ns(3_000_000_000), "3.000s");
    }

    #[test]
    fn renders_nested_spans_with_self_time() {
        let snapshot = Snapshot {
            counters: vec![("cache.hits".to_string(), 5)],
            gauges: vec![("pool.workers".to_string(), 4)],
            histograms: vec![("serve.query_us".to_string(), vec![(3, 2)])],
            spans: vec![
                (
                    "suite.build".to_string(),
                    SpanStat {
                        count: 1,
                        total_ns: 1_000,
                    },
                ),
                (
                    "suite.build.good_machine".to_string(),
                    SpanStat {
                        count: 2,
                        total_ns: 400,
                    },
                ),
                (
                    "suite.build.propagate".to_string(),
                    SpanStat {
                        count: 2,
                        total_ns: 900,
                    },
                ),
            ],
        };
        let report = render_tree(&snapshot);
        assert!(report.contains("suite.build"));
        assert!(report.contains("  suite.build.good_machine"));
        // 1000 - (400 + 900) clamps to zero, not underflow.
        assert!(report.contains(&format!("self {:>10}", "0ns")));
        assert!(report.contains("cache.hits"));
        assert!(report.contains("pool.workers"));
        assert!(report.contains("2^3:2"));
    }

    #[test]
    fn empty_snapshot_renders_a_notice() {
        let report = render_tree(&Snapshot::default());
        assert!(report.contains("nothing recorded"));
    }

    #[test]
    fn grandchild_attaches_to_nearest_registered_prefix() {
        let stat = SpanStat {
            count: 1,
            total_ns: 10,
        };
        let spans = vec![
            ("a".to_string(), stat),
            ("a.b.c".to_string(), stat),
            ("z.q".to_string(), stat),
        ];
        let (roots, nodes) = build_tree(&spans);
        // "a.b" is unregistered, so "a.b.c" hangs off "a"; "z.q" is a root.
        assert_eq!(roots, vec![0, 2]);
        assert_eq!(nodes[0].children, vec![1]);
    }
}
