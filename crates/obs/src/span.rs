//! Hierarchical phase timers.
//!
//! A [`Span`] is a named timer declared as a `static`; [`Span::start`]
//! returns a guard whose drop folds the elapsed wall time into the
//! registry.  Spans aggregate **by name**, not by runtime call stack:
//! every run of `engine.parallel.good_machine` lands in the same
//! `(count, total_ns)` stat regardless of which thread or shard ran it.
//! The *tree* comes from the dotted names — `a.b.c` is a child of the
//! longest registered proper prefix (`a.b`, else `a`) — which keeps the
//! report structure identical at every worker count even though per-shard
//! timings are folded from many threads.  A consequence worth knowing:
//! a parallel child phase's `total_ns` sums across workers, so it can
//! exceed its parent's wall time; the renderer clamps self time at zero.

use crate::registry::{span_cell, SpanCell};
use std::sync::OnceLock;
use std::time::Instant;

/// A named phase timer.  Declare as a `static` and [`start`](Span::start)
/// it around the phase body; same-name spans (across threads and crates)
/// merge into one stat.
pub struct Span {
    name: &'static str,
    cell: OnceLock<&'static SpanCell>,
}

impl Span {
    /// A handle on the span called `name` (dotted path, e.g.
    /// `engine.parallel.good_machine`).
    pub const fn new(name: &'static str) -> Span {
        Span {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The span's dotted name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Starts timing the phase when telemetry is enabled; a single
    /// relaxed load otherwise.  Drop the guard to record.
    #[inline]
    pub fn start(&self) -> SpanGuard<'_> {
        SpanGuard {
            active: crate::enabled().then(|| (self, Instant::now())),
        }
    }
}

/// Live timing of one span run; records on drop.
#[must_use = "a span guard must be held for the duration of the phase"]
pub struct SpanGuard<'a> {
    active: Option<(&'a Span, Instant)>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some((span, started)) = self.active.take() {
            span.cell
                .get_or_init(|| span_cell(span.name))
                .record(started.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::tests::recording;

    #[test]
    fn spans_fold_count_and_time_by_name() {
        static PHASE: Span = Span::new("test.span.phase");
        recording(|| {
            for _ in 0..3 {
                let _guard = PHASE.start();
                std::hint::black_box(0u64);
            }
            let stat = crate::snapshot().span("test.span.phase");
            assert_eq!(stat.count, 3);
        });
        assert_eq!(PHASE.name(), "test.span.phase");
    }

    #[test]
    fn disabled_spans_do_not_register_runs() {
        static PHASE: Span = Span::new("test.span.disabled");
        let _guard = crate::registry::tests::MODE_LOCK
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        crate::set_mode(crate::MetricsMode::Off);
        drop(PHASE.start());
        assert_eq!(crate::snapshot().span("test.span.disabled").count, 0);
    }
}
