//! Per-fault signature dictionaries.
//!
//! The stored-pattern flow records, per fault, the first *pattern* that
//! detects it ([`FaultDictionary`](lsiq_fault::dictionary::FaultDictionary)).
//! Under BIST the tester only observes MISR readouts, so the per-fault
//! record becomes the first *test session* whose signature differs from the
//! fault-free one — and a fault whose responses differ but whose session
//! signatures never do is *aliased*: detected by the pattern set, shipped by
//! the signature compare.
//!
//! [`SignatureDictionary::build_in`] produces both records for a whole fault
//! universe in one fault-simulation pass: the fault universe is sharded
//! across the worker pool ([`ExecutionContext::scope`] via `scope_map`,
//! exactly like the parallel fault engine), each fault's faulty responses
//! are simulated 64 patterns at a time, and only the *error* stream
//! (good XOR faulty) is folded — by the fold's GF(2) linearity (the identity
//! [`Misr::fold_error_block`] packages for a single register) a session
//! signature mismatches exactly when the error register is non-zero at the
//! readout.  Faults whose error stream has gone quiet
//! skip whole blocks without touching the register, and a fault is dropped
//! from the pass entirely once every requested signature width has resolved
//! its first failing session.

use crate::misr::Misr;
use lsiq_exec::{ExecutionContext, LaneWidth};
use lsiq_fault::inject::output_chunks_with_fault;
use lsiq_fault::universe::FaultUniverse;
use lsiq_netlist::circuit::Circuit;
use lsiq_obs::{Counter, Span};
use lsiq_sim::cache::{circuit_fingerprint, GoodMachineCache};
use lsiq_sim::levelized::CompiledCircuit;
use lsiq_sim::packed::{gather_chunk_slot, PackedBlock};
use lsiq_sim::pattern::PatternSet;

/// One-pass sweeps started (every `build*` entry point funnels here).
static SWEEPS: Counter = Counter::new("bist.sweep.runs");
/// Faults entering a sweep; invariant at any worker count.
static SWEEP_FAULTS: Counter = Counter::new("bist.sweep.faults");
/// `(length, width)` grid cells the sweep resolves.
static SWEEP_CELLS: Counter = Counter::new("bist.sweep.cells");
/// Packing and folding the fault-free machine (once per sweep).
static GOOD_SIGNATURES: Span = Span::new("bist.sweep.good_signatures");
/// Per-shard fault simulation and error-stream folding.
static PROPAGATE: Span = Span::new("bist.sweep.propagate");

/// The readout schedule and signature geometry of one self-test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BistPlan {
    /// Patterns applied between signature readouts; a trailing partial
    /// session is read out too.  Must be at least 1.
    pub session_len: usize,
    /// MISR width `k` (one of
    /// [`SUPPORTED_DEGREES`](crate::lfsr::SUPPORTED_DEGREES)).
    pub signature_width: u32,
}

impl Default for BistPlan {
    /// The default self-test geometry: 64-pattern sessions (one packed
    /// simulation block) compacted into a 16-bit signature.
    fn default() -> BistPlan {
        BistPlan {
            session_len: 64,
            signature_width: 16,
        }
    }
}

/// One precomputed lane-wide chunk: packed inputs, good-machine outputs,
/// valid mask, pattern count.
struct Block<const L: usize> {
    inputs: Vec<PackedBlock<L>>,
    good_outputs: Vec<PackedBlock<L>>,
    valid: PackedBlock<L>,
    count: usize,
}

fn precompute_blocks<const L: usize>(
    compiled: &CompiledCircuit<'_>,
    patterns: &PatternSet,
    cache: Option<&GoodMachineCache>,
) -> Vec<Block<L>> {
    let circuit = compiled.circuit();
    let input_count = circuit.primary_inputs().len();
    let fingerprint = cache.map(|_| circuit_fingerprint(circuit));
    let mut blocks = Vec::with_capacity(patterns.chunk_count(L));
    for chunk in 0..patterns.chunk_count(L) {
        let (inputs, count) = patterns.pack_chunk::<L>(input_count, chunk);
        if count == 0 {
            break;
        }
        let good_outputs = match (cache, fingerprint) {
            (Some(cache), Some(fingerprint)) => {
                let nodes = cache.node_chunks_keyed(fingerprint, compiled, &inputs, count);
                circuit
                    .primary_outputs()
                    .iter()
                    .map(|&out| nodes[out.index()])
                    .collect()
            }
            _ => compiled.output_chunks(&inputs),
        };
        blocks.push(Block {
            inputs,
            good_outputs,
            valid: PackedBlock::valid_mask(count),
            count,
        });
    }
    blocks
}

/// Per-fault first-failing-session and aliasing records for one fault
/// universe under one ordered pattern set and one [`BistPlan`].
///
/// The BIST analogue of
/// [`FaultDictionary`](lsiq_fault::dictionary::FaultDictionary): the
/// signature tester consults it to decide at which session a defective chip
/// first fails, and the [`AliasingReport`](crate::aliasing::AliasingReport)
/// folds its aliased-fault count into the effective-coverage figure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignatureDictionary {
    session_len: usize,
    sessions: usize,
    signature_width: u32,
    /// Fault-free signature of each session, in session order.
    good: Vec<u64>,
    /// Per fault: the first session whose signature differs from `good`.
    first_fail: Vec<Option<usize>>,
    /// Per fault: whether any output response differs at any applied
    /// pattern (detection by the pattern set, before compaction).
    raw_detected: Vec<bool>,
}

impl SignatureDictionary {
    /// Builds the dictionary on the process-wide worker pool.
    ///
    /// # Panics
    ///
    /// Panics if `plan.session_len` is 0 or `plan.signature_width` is not a
    /// supported MISR width.
    pub fn build(
        circuit: &Circuit,
        universe: &FaultUniverse,
        patterns: &PatternSet,
        plan: &BistPlan,
    ) -> SignatureDictionary {
        SignatureDictionary::build_in(
            ExecutionContext::global(),
            circuit,
            universe,
            patterns,
            plan,
        )
    }

    /// Builds the dictionary with the fault shards executing on `context`'s
    /// worker pool.  Results are byte-identical at any worker count.
    pub fn build_in(
        context: &ExecutionContext,
        circuit: &Circuit,
        universe: &FaultUniverse,
        patterns: &PatternSet,
        plan: &BistPlan,
    ) -> SignatureDictionary {
        SignatureDictionary::build_many_in(
            context,
            circuit,
            universe,
            patterns,
            plan.session_len,
            &[plan.signature_width],
        )
        .pop()
        .expect("one width in, one dictionary out")
    }

    /// Builds one dictionary per requested signature width in a *single*
    /// fault-simulation pass: every fault's responses are simulated once and
    /// folded into one error register per width.  This is what makes a
    /// test-length × signature-width sweep affordable — the simulation cost
    /// is paid per length, not per grid cell.
    ///
    /// # Panics
    ///
    /// Panics if `session_len` is 0, `widths` is empty, or any width is not
    /// a supported MISR width.
    pub fn build_many_in(
        context: &ExecutionContext,
        circuit: &Circuit,
        universe: &FaultUniverse,
        patterns: &PatternSet,
        session_len: usize,
        widths: &[u32],
    ) -> Vec<SignatureDictionary> {
        SignatureDictionary::build_sweep_in(
            context,
            circuit,
            universe,
            patterns,
            session_len,
            widths,
            &[patterns.len()],
        )
        .pop()
        .expect("one length in, one dictionary row out")
    }

    /// Builds one dictionary per `(test length, signature width)` grid cell
    /// in a *single* fault-simulation pass over the full pattern set.
    ///
    /// Each requested length is a prefix of `patterns`, and MISR sessions
    /// are independent (the register resets at every readout), so one
    /// maximum-length simulation determines every prefix: full-session
    /// readouts are shared verbatim, and the only extra state a shorter
    /// test needs is the error register's value at its trailing partial
    /// session — captured as a snapshot when the pass crosses that length
    /// boundary.  The result is indexed `[length][width]` (input order) and
    /// each dictionary is byte-identical to what
    /// [`build_many_in`](SignatureDictionary::build_many_in) produces on the
    /// truncated pattern set, at a fault-simulation cost paid once instead
    /// of once per length.
    ///
    /// # Panics
    ///
    /// Panics if `session_len` is 0, `widths` or `lengths` is empty, any
    /// width is not a supported MISR width, or any length exceeds the
    /// pattern set.
    pub fn build_sweep_in(
        context: &ExecutionContext,
        circuit: &Circuit,
        universe: &FaultUniverse,
        patterns: &PatternSet,
        session_len: usize,
        widths: &[u32],
        lengths: &[usize],
    ) -> Vec<Vec<SignatureDictionary>> {
        SignatureDictionary::build_sweep_cached(
            context,
            circuit,
            universe,
            patterns,
            session_len,
            widths,
            lengths,
            LaneWidth::Auto,
            None,
        )
    }

    /// The fully configured form of
    /// [`build_sweep_in`](SignatureDictionary::build_sweep_in): the packed
    /// lane width is selectable (results are byte-identical at every width)
    /// and an optional shared [`GoodMachineCache`] supplies — or receives —
    /// the per-chunk good-machine images, so a session that has already
    /// simulated the same circuit over the same patterns (a test-suite
    /// build, an earlier sweep) never re-runs the fault-free machine.
    #[allow(clippy::too_many_arguments)]
    pub fn build_sweep_cached(
        context: &ExecutionContext,
        circuit: &Circuit,
        universe: &FaultUniverse,
        patterns: &PatternSet,
        session_len: usize,
        widths: &[u32],
        lengths: &[usize],
        lanes: LaneWidth,
        cache: Option<&GoodMachineCache>,
    ) -> Vec<Vec<SignatureDictionary>> {
        match lanes.resolve(patterns.len()) {
            1 => SignatureDictionary::build_sweep_lanes::<1>(
                context,
                circuit,
                universe,
                patterns,
                session_len,
                widths,
                lengths,
                cache,
            ),
            4 => SignatureDictionary::build_sweep_lanes::<4>(
                context,
                circuit,
                universe,
                patterns,
                session_len,
                widths,
                lengths,
                cache,
            ),
            _ => SignatureDictionary::build_sweep_lanes::<8>(
                context,
                circuit,
                universe,
                patterns,
                session_len,
                widths,
                lengths,
                cache,
            ),
        }
    }

    /// One lane-monomorphized sweep (see
    /// [`build_sweep_cached`](SignatureDictionary::build_sweep_cached)).
    #[allow(clippy::too_many_arguments)]
    fn build_sweep_lanes<const L: usize>(
        context: &ExecutionContext,
        circuit: &Circuit,
        universe: &FaultUniverse,
        patterns: &PatternSet,
        session_len: usize,
        widths: &[u32],
        lengths: &[usize],
        cache: Option<&GoodMachineCache>,
    ) -> Vec<Vec<SignatureDictionary>> {
        assert!(session_len >= 1, "a session must apply at least 1 pattern");
        assert!(!widths.is_empty(), "at least one signature width required");
        assert!(!lengths.is_empty(), "at least one test length required");
        assert!(
            lengths.iter().all(|&length| length <= patterns.len()),
            "test lengths cannot exceed the pattern set"
        );
        SWEEPS.incr();
        SWEEP_CELLS.add((widths.len() * lengths.len()) as u64);
        let good_timer = GOOD_SIGNATURES.start();
        let compiled = CompiledCircuit::new(circuit);
        let blocks = precompute_blocks::<L>(&compiled, patterns, cache);
        let mut boundaries: Vec<usize> = lengths.to_vec();
        boundaries.sort_unstable();
        boundaries.dedup();

        // Fault-free signatures, folded once up front: one signature per
        // *full* session, plus a running-state snapshot at every length
        // boundary (used by lengths whose trailing session is partial).
        let mut good_registers: Vec<Misr> = widths.iter().map(|&w| Misr::new(w)).collect();
        let mut good_full: Vec<Vec<u64>> = vec![Vec::new(); widths.len()];
        let mut good_partial: Vec<Vec<u64>> = vec![vec![0; boundaries.len()]; widths.len()];
        let mut consumed = 0usize;
        let mut in_session = 0usize;
        let mut next_boundary = 0usize;
        for block in &blocks {
            for slot in 0..block.count {
                for register in good_registers.iter_mut() {
                    register.fold(gather_chunk_slot(&block.good_outputs, slot));
                }
                consumed += 1;
                in_session += 1;
                while next_boundary < boundaries.len() && boundaries[next_boundary] == consumed {
                    for (which, register) in good_registers.iter().enumerate() {
                        good_partial[which][next_boundary] = register.signature();
                    }
                    next_boundary += 1;
                }
                if in_session == session_len {
                    for (which, register) in good_registers.iter_mut().enumerate() {
                        good_full[which].push(register.signature());
                        register.reset();
                    }
                    in_session = 0;
                }
            }
        }

        drop(good_timer);

        // Shard the fault universe across the pool, mirroring the parallel
        // fault engine's geometry.
        let faults = universe.faults();
        SWEEP_FAULTS.add(faults.len() as u64);
        let shard_count = context
            .workers()
            .min(faults.len().div_ceil(MIN_FAULTS_PER_SHARD))
            .max(1);
        let chunk = faults.len().div_ceil(shard_count).max(1);
        let results: Vec<ShardResult> = if shard_count <= 1 {
            vec![simulate_shard(
                &compiled,
                &blocks,
                faults,
                session_len,
                widths,
                &boundaries,
            )]
        } else {
            let shards: Vec<&[lsiq_fault::model::Fault]> = faults.chunks(chunk).collect();
            context.scope_map(shards, |shard| {
                simulate_shard(&compiled, &blocks, shard, session_len, widths, &boundaries)
            })
        };

        // Concatenate the shards back into universe fault order.
        let mut first_error: Vec<Option<usize>> = Vec::with_capacity(faults.len());
        let mut first_fail: Vec<Vec<Option<usize>>> =
            vec![Vec::with_capacity(faults.len()); widths.len()];
        let mut partial_fail: Vec<Vec<Vec<bool>>> =
            vec![Vec::with_capacity(faults.len()); widths.len()];
        for shard in results {
            first_error.extend(shard.first_error);
            for (which, fails) in shard.first_fail.into_iter().enumerate() {
                first_fail[which].extend(fails);
            }
            for (which, partials) in shard.partial_fail.into_iter().enumerate() {
                partial_fail[which].extend(partials);
            }
        }

        // Derive every (length, width) dictionary from the one pass.
        lengths
            .iter()
            .map(|&length| {
                let boundary = boundaries
                    .binary_search(&length)
                    .expect("every length is a recorded boundary");
                let full_sessions = length / session_len;
                let has_partial = length % session_len != 0;
                widths
                    .iter()
                    .enumerate()
                    .map(|(which, &width)| {
                        let mut good = good_full[which][..full_sessions].to_vec();
                        if has_partial {
                            good.push(good_partial[which][boundary]);
                        }
                        let first_fail: Vec<Option<usize>> = first_fail[which]
                            .iter()
                            .zip(&partial_fail[which])
                            .map(|(&fail, partials)| match fail {
                                // A full-session failure inside the prefix
                                // is the answer for every longer length.
                                Some(session) if session < full_sessions => Some(session),
                                // Otherwise the prefix's only remaining
                                // readout is its trailing partial session.
                                _ if has_partial && partials[boundary] => Some(full_sessions),
                                _ => None,
                            })
                            .collect();
                        let raw_detected: Vec<bool> = first_error
                            .iter()
                            .map(|error| error.is_some_and(|pattern| pattern < length))
                            .collect();
                        SignatureDictionary {
                            session_len,
                            sessions: length.div_ceil(session_len),
                            signature_width: width,
                            good,
                            first_fail,
                            raw_detected,
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Reassembles a dictionary from its recorded parts — the inverse of
    /// the [`good_signatures`](Self::good_signatures) /
    /// [`first_failing_sessions`](Self::first_failing_sessions) /
    /// [`raw_detected_flags`](Self::raw_detected_flags) accessors, used by
    /// artifact stores that persist dictionaries across processes.
    ///
    /// `good` carries one fault-free signature per session (a trailing
    /// partial session included), so `sessions` is taken from its length.
    ///
    /// # Panics
    ///
    /// Panics if `session_len` is 0 or the per-fault vectors disagree in
    /// length.
    pub fn from_parts(
        session_len: usize,
        signature_width: u32,
        good: Vec<u64>,
        first_fail: Vec<Option<usize>>,
        raw_detected: Vec<bool>,
    ) -> SignatureDictionary {
        assert!(session_len >= 1, "a session must apply at least 1 pattern");
        assert_eq!(
            first_fail.len(),
            raw_detected.len(),
            "per-fault records must agree in length"
        );
        SignatureDictionary {
            session_len,
            sessions: good.len(),
            signature_width,
            good,
            first_fail,
            raw_detected,
        }
    }

    /// The fault-free signature of every session, in session order.
    pub fn good_signatures(&self) -> &[u64] {
        &self.good
    }

    /// Per fault: the first session whose signature differs from the
    /// fault-free one.
    pub fn first_failing_sessions(&self) -> &[Option<usize>] {
        &self.first_fail
    }

    /// Per fault: whether any output response differs at any applied
    /// pattern (detection by the pattern set, before compaction).
    pub fn raw_detected_flags(&self) -> &[bool] {
        &self.raw_detected
    }

    /// Number of faults covered by the dictionary.
    pub fn len(&self) -> usize {
        self.first_fail.len()
    }

    /// Returns `true` if the dictionary covers no faults.
    pub fn is_empty(&self) -> bool {
        self.first_fail.is_empty()
    }

    /// Number of test sessions (signature readouts), including a trailing
    /// partial session.
    pub fn sessions(&self) -> usize {
        self.sessions
    }

    /// Patterns applied per full session.
    pub fn session_len(&self) -> usize {
        self.session_len
    }

    /// The MISR width `k`.
    pub fn signature_width(&self) -> u32 {
        self.signature_width
    }

    /// The fault-free signature read out after session `session`.
    pub fn good_signature(&self, session: usize) -> Option<u64> {
        self.good.get(session).copied()
    }

    /// The first session at which fault `index`'s signature differs from the
    /// fault-free one, or `None` if every readout matches (the fault is
    /// undetected — or detected but aliased).
    pub fn first_failing_session(&self, index: usize) -> Option<usize> {
        self.first_fail.get(index).copied().flatten()
    }

    /// Whether fault `index` produces any response difference under the
    /// applied pattern set (detection before compaction).
    pub fn is_raw_detected(&self, index: usize) -> bool {
        self.raw_detected.get(index).copied().unwrap_or(false)
    }

    /// Whether fault `index` is aliased: its responses differ at some
    /// pattern, yet every session signature equals the fault-free one.
    pub fn is_aliased(&self, index: usize) -> bool {
        self.is_raw_detected(index) && self.first_failing_session(index).is_none()
    }

    /// Indices of the aliased faults.
    pub fn aliased_indices(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.is_aliased(i)).collect()
    }

    /// Number of faults detected by the pattern set (before compaction).
    pub fn raw_detected_count(&self) -> usize {
        self.raw_detected.iter().filter(|&&d| d).count()
    }

    /// Number of faults the signature compare detects (raw detections minus
    /// aliased faults).
    pub fn signature_detected_count(&self) -> usize {
        self.first_fail.iter().filter(|f| f.is_some()).count()
    }

    /// The first session at which a chip carrying exactly the faults in
    /// `fault_indices` fails its signature compare, or `None` if every
    /// readout matches.
    ///
    /// This mirrors
    /// [`FaultDictionary::first_failure_of_chip`](lsiq_fault::dictionary::FaultDictionary::first_failure_of_chip)
    /// under the same single-fault-detectability assumption: the chip's
    /// faults are equivalent to a set of independently observable stuck-at
    /// faults, so its signature first diverges at the earliest first-failing
    /// session over them.
    pub fn first_failure_of_chip(&self, fault_indices: &[usize]) -> Option<usize> {
        fault_indices
            .iter()
            .filter_map(|&index| self.first_failing_session(index))
            .min()
    }
}

/// Minimum faults per shard; below this the scheduling overhead costs more
/// than the parallelism recovers (mirrors the parallel fault engine).
const MIN_FAULTS_PER_SHARD: usize = 64;

/// One shard's per-fault results, in shard-local fault order.
struct ShardResult {
    /// `[width][fault]` first failing *full* session.
    first_fail: Vec<Vec<Option<usize>>>,
    /// `[width][fault][boundary]` whether the error register was non-zero
    /// when the pass crossed that length boundary — the trailing
    /// partial-session verdict of the test ending there.
    partial_fail: Vec<Vec<Vec<bool>>>,
    /// `[fault]` index of the first pattern whose response differs, or
    /// `None` if no response ever does.  `first_error < length` is the raw
    /// (pre-compaction) detection verdict of every prefix at once.
    first_error: Vec<Option<usize>>,
}

fn simulate_shard<const L: usize>(
    compiled: &CompiledCircuit<'_>,
    blocks: &[Block<L>],
    faults: &[lsiq_fault::model::Fault],
    session_len: usize,
    widths: &[u32],
    boundaries: &[usize],
) -> ShardResult {
    let _timer = PROPAGATE.start();
    let mut result = ShardResult {
        first_fail: vec![Vec::with_capacity(faults.len()); widths.len()],
        partial_fail: vec![Vec::with_capacity(faults.len()); widths.len()],
        first_error: Vec::with_capacity(faults.len()),
    };
    let mut registers: Vec<Misr> = widths.iter().map(|&w| Misr::new(w)).collect();
    let mut error_words: Vec<PackedBlock<L>> = Vec::new();
    for fault in faults {
        let mut first_fail: Vec<Option<usize>> = vec![None; widths.len()];
        let mut partial_fail: Vec<Vec<bool>> = vec![vec![false; boundaries.len()]; widths.len()];
        let mut unresolved = widths.len();
        let mut first_error: Option<usize> = None;
        for register in registers.iter_mut() {
            register.reset();
        }
        let mut session = 0usize;
        let mut in_session = 0usize;
        let mut consumed = 0usize;
        let mut next_boundary = 0usize;
        // Read out every register, record new failures, reset for the next
        // session.
        let readout = |registers: &mut [Misr],
                       first_fail: &mut [Option<usize>],
                       unresolved: &mut usize,
                       session: usize| {
            for (which, register) in registers.iter_mut().enumerate() {
                if first_fail[which].is_none() && register.signature() != 0 {
                    first_fail[which] = Some(session);
                    *unresolved -= 1;
                }
                register.reset();
            }
        };
        'blocks: for block in blocks {
            let faulty = output_chunks_with_fault(compiled, &block.inputs, fault);
            error_words.clear();
            error_words.extend(
                block
                    .good_outputs
                    .iter()
                    .zip(&faulty)
                    .map(|(&good, &bad)| (good ^ bad) & block.valid),
            );
            let error_union = error_words
                .iter()
                .fold(PackedBlock::<L>::ZERO, |union, &word| union | word);
            if first_error.is_none() {
                if let Some(slot) = error_union.first_set_slot() {
                    first_error = Some(consumed + slot);
                }
            }
            if error_union.is_zero() && registers.iter().all(|r| r.signature() == 0) {
                // A quiet block cannot move a zero register; fast-forward
                // the session counters (each readout trivially passes) and
                // the boundary cursor (each snapshot trivially passes too —
                // `partial_fail` is already `false`).
                consumed += block.count;
                in_session += block.count;
                while in_session >= session_len {
                    in_session -= session_len;
                    session += 1;
                }
                while next_boundary < boundaries.len() && boundaries[next_boundary] <= consumed {
                    next_boundary += 1;
                }
                continue;
            }
            for slot in 0..block.count {
                for (which, register) in registers.iter_mut().enumerate() {
                    // A resolved width's register was reset at its failing
                    // readout and is never read again; skip its folds.
                    if first_fail[which].is_none() {
                        register.fold(gather_chunk_slot(&error_words, slot));
                    }
                }
                consumed += 1;
                in_session += 1;
                while next_boundary < boundaries.len() && boundaries[next_boundary] == consumed {
                    // A test ending here reads its last, partial session out
                    // of the register as it stands — snapshot the verdict
                    // without disturbing the ongoing fold.  (A resolved
                    // width's register is zero and its snapshot is unused.)
                    for (which, register) in registers.iter().enumerate() {
                        partial_fail[which][next_boundary] = register.signature() != 0;
                    }
                    next_boundary += 1;
                }
                if in_session == session_len {
                    readout(&mut registers, &mut first_fail, &mut unresolved, session);
                    session += 1;
                    in_session = 0;
                    if unresolved == 0 {
                        // Every width has its first failing full session.
                        // Later boundaries lie in later sessions, so their
                        // dictionaries resolve from `first_fail` alone, and
                        // a signature failure implies a response difference,
                        // so `first_error` is already set.
                        break 'blocks;
                    }
                }
            }
        }
        result.first_error.push(first_error);
        for (which, fail) in first_fail.into_iter().enumerate() {
            result.first_fail[which].push(fail);
        }
        for (which, partials) in partial_fail.into_iter().enumerate() {
            result.partial_fail[which].push(partials);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stumps::{StumpsConfig, StumpsGenerator};
    use lsiq_fault::inject::outputs_with_fault;
    use lsiq_netlist::library;
    use lsiq_sim::pattern::Pattern;

    fn c17_fixture() -> (lsiq_netlist::circuit::Circuit, FaultUniverse, PatternSet) {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..32).map(|v| Pattern::from_integer(v, 5)).collect();
        (circuit, universe, patterns)
    }

    /// Brute-force reference: fold every fault's *actual* session signatures
    /// with a plain MISR over serially simulated responses and compare to
    /// the fault-free signatures.
    fn brute_force_first_fail(
        circuit: &lsiq_netlist::circuit::Circuit,
        universe: &FaultUniverse,
        patterns: &PatternSet,
        plan: &BistPlan,
    ) -> (Vec<Option<usize>>, Vec<bool>) {
        let compiled = CompiledCircuit::new(circuit);
        let sessions = patterns.len().div_ceil(plan.session_len);
        let mut good_signatures = Vec::new();
        {
            let mut misr = Misr::new(plan.signature_width);
            for (index, pattern) in patterns.iter().enumerate() {
                misr.fold(compiled.outputs(pattern));
                if (index + 1) % plan.session_len == 0 || index + 1 == patterns.len() {
                    good_signatures.push(misr.signature());
                    misr.reset();
                }
            }
        }
        assert_eq!(good_signatures.len(), sessions);
        let mut first_fail = Vec::new();
        let mut raw_detected = Vec::new();
        for fault in universe.iter() {
            let mut misr = Misr::new(plan.signature_width);
            let mut raw = false;
            let mut fail = None;
            let mut session = 0;
            for (index, pattern) in patterns.iter().enumerate() {
                let good = compiled.outputs(pattern);
                let faulty = outputs_with_fault(&compiled, pattern.bits(), fault);
                raw |= good != faulty;
                misr.fold(faulty);
                if (index + 1) % plan.session_len == 0 || index + 1 == patterns.len() {
                    if fail.is_none() && misr.signature() != good_signatures[session] {
                        fail = Some(session);
                    }
                    misr.reset();
                    session += 1;
                }
            }
            first_fail.push(fail);
            raw_detected.push(raw);
        }
        (first_fail, raw_detected)
    }

    #[test]
    fn matches_brute_force_reference_on_c17() {
        let (circuit, universe, patterns) = c17_fixture();
        for plan in [
            BistPlan::default(),
            BistPlan {
                session_len: 5,
                signature_width: 4,
            },
            BistPlan {
                session_len: 7,
                signature_width: 8,
            },
        ] {
            let dictionary = SignatureDictionary::build(&circuit, &universe, &patterns, &plan);
            let (first_fail, raw) = brute_force_first_fail(&circuit, &universe, &patterns, &plan);
            for index in 0..universe.len() {
                assert_eq!(
                    dictionary.first_failing_session(index),
                    first_fail[index],
                    "fault {index}, plan {plan:?}"
                );
                assert_eq!(
                    dictionary.is_raw_detected(index),
                    raw[index],
                    "fault {index}, plan {plan:?}"
                );
            }
            assert_eq!(
                dictionary.sessions(),
                patterns.len().div_ceil(plan.session_len)
            );
        }
    }

    #[test]
    fn worker_counts_are_invisible_in_the_result() {
        let circuit = library::alu4();
        let universe = FaultUniverse::full(&circuit);
        let patterns =
            StumpsGenerator::new(&StumpsConfig::with_width(circuit.primary_inputs().len(), 7))
                .generate(96);
        let plan = BistPlan {
            session_len: 32,
            signature_width: 8,
        };
        let reference = SignatureDictionary::build_in(
            &ExecutionContext::new(1),
            &circuit,
            &universe,
            &patterns,
            &plan,
        );
        for workers in [2, 3, 8] {
            let context = ExecutionContext::new(workers);
            let dictionary =
                SignatureDictionary::build_in(&context, &circuit, &universe, &patterns, &plan);
            assert_eq!(reference, dictionary, "workers = {workers}");
        }
    }

    #[test]
    fn build_many_matches_individual_builds() {
        let (circuit, universe, patterns) = c17_fixture();
        let widths = [4u32, 8, 16];
        let many = SignatureDictionary::build_many_in(
            ExecutionContext::global(),
            &circuit,
            &universe,
            &patterns,
            6,
            &widths,
        );
        assert_eq!(many.len(), widths.len());
        for (dictionary, &width) in many.iter().zip(&widths) {
            let single = SignatureDictionary::build(
                &circuit,
                &universe,
                &patterns,
                &BistPlan {
                    session_len: 6,
                    signature_width: width,
                },
            );
            assert_eq!(*dictionary, single, "width {width}");
        }
    }

    #[test]
    fn one_pass_sweep_matches_per_length_builds() {
        // The sweep's single maximum-length pass must reproduce, byte for
        // byte, what a fresh build on each truncated pattern set computes —
        // including lengths shorter than a session, unaligned mid-session
        // boundaries, and out-of-order requests.
        let circuit = library::alu4();
        let universe = FaultUniverse::full(&circuit);
        let patterns = StumpsGenerator::new(&StumpsConfig::with_width(
            circuit.primary_inputs().len(),
            11,
        ))
        .generate(96);
        let widths = [4u32, 8, 16];
        let session_len = 16;
        let lengths = [48usize, 10, 16, 57, 96];
        let context = ExecutionContext::new(4);
        let sweep = SignatureDictionary::build_sweep_in(
            &context,
            &circuit,
            &universe,
            &patterns,
            session_len,
            &widths,
            &lengths,
        );
        assert_eq!(sweep.len(), lengths.len());
        for (row, &length) in sweep.iter().zip(&lengths) {
            let prefix: PatternSet = patterns.iter().take(length).cloned().collect();
            let reference = SignatureDictionary::build_many_in(
                &ExecutionContext::new(1),
                &circuit,
                &universe,
                &prefix,
                session_len,
                &widths,
            );
            assert_eq!(*row, reference, "length {length}");
        }
    }

    #[test]
    fn lane_widths_and_cache_are_invisible_in_the_sweep() {
        let circuit = library::alu4();
        let universe = FaultUniverse::full(&circuit);
        let patterns = StumpsGenerator::new(&StumpsConfig::with_width(
            circuit.primary_inputs().len(),
            13,
        ))
        .generate(160);
        let widths = [8u32, 16];
        let lengths = [40usize, 96, 160];
        let context = ExecutionContext::new(2);
        let reference = SignatureDictionary::build_sweep_in(
            &context, &circuit, &universe, &patterns, 32, &widths, &lengths,
        );
        let cache = GoodMachineCache::new();
        for lanes in LaneWidth::EXPLICIT {
            let sweep = SignatureDictionary::build_sweep_cached(
                &context,
                &circuit,
                &universe,
                &patterns,
                32,
                &widths,
                &lengths,
                lanes,
                Some(&cache),
            );
            assert_eq!(reference, sweep, "lanes = {lanes}");
        }
        assert!(cache.misses() > 0);
        // Replaying a cached width is pure hits for the good machine.
        let before = cache.hits();
        let replay = SignatureDictionary::build_sweep_cached(
            &context,
            &circuit,
            &universe,
            &patterns,
            32,
            &widths,
            &lengths,
            LaneWidth::X8,
            Some(&cache),
        );
        assert_eq!(reference, replay);
        assert!(cache.hits() > before);
    }

    #[test]
    fn exhaustive_patterns_detect_everything_in_some_session() {
        let (circuit, universe, patterns) = c17_fixture();
        // Wide signature over short sessions: aliasing probability ~2^-16
        // per readout; on 46 faults the seeded run has none.
        let plan = BistPlan {
            session_len: 8,
            signature_width: 16,
        };
        let dictionary = SignatureDictionary::build(&circuit, &universe, &patterns, &plan);
        assert_eq!(dictionary.len(), universe.len());
        assert_eq!(dictionary.raw_detected_count(), universe.len());
        assert_eq!(dictionary.signature_detected_count(), universe.len());
        assert!(dictionary.aliased_indices().is_empty());
        // Chip-level failure mirrors the per-fault minimum.
        let first0 = dictionary.first_failing_session(0).expect("detected");
        let first5 = dictionary.first_failing_session(5).expect("detected");
        assert_eq!(
            dictionary.first_failure_of_chip(&[0, 5]),
            Some(first0.min(first5))
        );
        assert_eq!(dictionary.first_failure_of_chip(&[]), None);
    }

    #[test]
    fn empty_pattern_set_detects_nothing() {
        let (circuit, universe, _) = c17_fixture();
        let dictionary = SignatureDictionary::build(
            &circuit,
            &universe,
            &PatternSet::new(),
            &BistPlan::default(),
        );
        assert_eq!(dictionary.sessions(), 0);
        assert_eq!(dictionary.raw_detected_count(), 0);
        assert_eq!(dictionary.signature_detected_count(), 0);
        assert!(!dictionary.is_aliased(0));
        assert_eq!(dictionary.good_signature(0), None);
    }
}
