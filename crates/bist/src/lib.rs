//! Built-in self-test: pattern generation, signature compaction, aliasing.
//!
//! The paper ties product quality to the fault coverage of the applied test;
//! this crate models the 1981-and-onward way that test increasingly reached
//! the chip — *on-chip*, from an LFSR pattern source into a MISR response
//! compactor — and quantifies what the compactor costs: signature aliasing
//! silently converts detected faults into test escapes, so the coverage the
//! quality model should consume is lower than the fault simulator reports.
//!
//! * [`lfsr`] — parameterizable Galois LFSRs with a built-in table of
//!   maximal-length polynomials (the register under both the generator and
//!   the compactor; `lsiq_tpg::lfsr::Lfsr` is now a thin wrapper over it),
//! * [`stumps`] — a STUMPS-style generator: one LFSR, a fixed XOR phase
//!   shifter, N parallel scan channels filling the device inputs,
//! * [`misr`] — the multiple-input signature register and its packed-word
//!   folding (64 patterns at a time, straight from the simulation blocks),
//! * [`signature`] — [`SignatureDictionary`]: per-fault first-failing
//!   *session* records built in one fault-simulation pass, sharded across a
//!   worker pool ([`lsiq_exec::ExecutionContext::scope`]),
//! * [`aliasing`] — [`AliasingReport`]: exact aliasing versus the `2^−k`
//!   estimate, and the effective coverage that replaces `f` in the paper's
//!   defect-level equations (eq. 7/8) under BIST.
//!
//! # Paper mapping
//!
//! Section 4's model consumes a fault coverage `f`; Sections 5–7 obtain `f`
//! from a fault simulator over the applied pattern set.  Under self-test the
//! observable is not the per-pattern response but the per-session signature,
//! so `f` must be replaced by the *effective* coverage
//! `f_eff = (detected − aliased) / N` — the correction this crate computes.
//! The `bist_sweep` harness binary sweeps test length × signature width and
//! reports the defect level (eq. 8) with and without that correction.
//!
//! # Quick example
//!
//! ```
//! use lsiq_bist::aliasing::AliasingReport;
//! use lsiq_bist::signature::{BistPlan, SignatureDictionary};
//! use lsiq_bist::stumps::{StumpsConfig, StumpsGenerator};
//! use lsiq_fault::universe::FaultUniverse;
//! use lsiq_netlist::library;
//!
//! let circuit = library::c17();
//! let universe = FaultUniverse::full(&circuit);
//! let patterns = StumpsGenerator::new(&StumpsConfig::with_width(5, 1981)).generate(64);
//! let dictionary =
//!     SignatureDictionary::build(&circuit, &universe, &patterns, &BistPlan::default());
//! let report = AliasingReport::from_dictionary(&dictionary);
//! assert!(report.effective_coverage() <= report.raw_coverage());
//! ```

pub mod aliasing;
pub mod lfsr;
pub mod misr;
pub mod signature;
pub mod stumps;

pub use aliasing::AliasingReport;
pub use lfsr::GaloisLfsr;
pub use misr::Misr;
pub use signature::{BistPlan, SignatureDictionary};
pub use stumps::{StumpsConfig, StumpsGenerator};
