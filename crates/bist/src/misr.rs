//! Multiple-input signature registers (MISR).
//!
//! A MISR is an LFSR with parallel inputs: each clock the register performs
//! one Galois step and XORs the current output response into its state, one
//! response bit per register position (responses wider than the register
//! fold onto positions modulo the width).  After the last pattern the state
//! is the test's *signature*; a self-tested chip passes when its signature
//! equals the fault-free one.
//!
//! Compaction loses information: a faulty response sequence can fold to the
//! fault-free signature ("aliasing"), silently converting a detected fault
//! into a test escape.  For a `k`-bit maximal-polynomial MISR the classical
//! estimate of that probability is `2^−k` per readout; the
//! [`aliasing`](crate::aliasing) module compares the estimate against the
//! exact count over a fault universe.
//!
//! The fold is linear over GF(2) — `fold` distributes over XOR of response
//! streams — so a register fed only the *error* stream (good XOR faulty)
//! holds exactly `faulty signature XOR good signature`: a failing readout is
//! a non-zero error state, and the faulty signature itself is never
//! materialised.  [`Misr::fold_error_block`] packages that trick for one
//! register; the signature-dictionary builder inlines the same identity to
//! drive several widths and mid-block session boundaries at once.

use crate::lfsr::{maximal_polynomial, DEGREE_GRAMMAR, SUPPORTED_DEGREES};
use lsiq_exec::ConfigError;
use lsiq_sim::packed::{gather_chunk_slot, gather_slot, PackedBlock};

/// A `width`-bit multiple-input signature register with the built-in
/// maximal-length feedback polynomial of that width.
///
/// ```
/// use lsiq_bist::misr::Misr;
///
/// let mut misr = Misr::new(16);
/// // Fold two output responses (one bool per circuit output, LSB first).
/// misr.fold([true, false, true]);
/// misr.fold([false, false, true]);
/// let signature = misr.signature();
///
/// // The same response sequence always folds to the same signature…
/// let mut replay = Misr::new(16);
/// replay.fold([true, false, true]);
/// replay.fold([false, false, true]);
/// assert_eq!(replay.signature(), signature);
///
/// // …and a single flipped response bit changes it.
/// let mut faulty = Misr::new(16);
/// faulty.fold([true, false, true]);
/// faulty.fold([true, false, true]);
/// assert_ne!(faulty.signature(), signature);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Misr {
    state: u64,
    width: u32,
    polynomial: u64,
}

impl Misr {
    /// Creates a zero-state register of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not one of [`SUPPORTED_DEGREES`].
    pub fn new(width: u32) -> Misr {
        Misr::try_new(width).unwrap_or_else(|_| {
            panic!(
                "no built-in MISR polynomial of width {width} (supported: {SUPPORTED_DEGREES:?})"
            )
        })
    }

    /// The fallible form of [`new`](Misr::new), for signature widths that
    /// arrive from user configuration (a `BistPlan`, a sweep
    /// specification): an unsupported width becomes a typed [`ConfigError`]
    /// instead of a panic.
    pub fn try_new(width: u32) -> Result<Misr, ConfigError> {
        let polynomial = maximal_polynomial(width).ok_or_else(|| {
            ConfigError::invalid_value("signature width", width.to_string(), DEGREE_GRAMMAR)
        })?;
        Ok(Misr {
            state: 0,
            width,
            polynomial,
        })
    }

    /// The register width `k` (signature bits).
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Resets the register to the all-zero state (the start of a test
    /// session).
    pub fn reset(&mut self) {
        self.state = 0;
    }

    /// The current signature.
    pub fn signature(&self) -> u64 {
        self.state
    }

    /// One Galois step of the feedback polynomial over `state`.
    #[inline]
    fn step(state: u64, polynomial: u64) -> u64 {
        let lsb = state & 1;
        let shifted = state >> 1;
        if lsb == 1 {
            shifted ^ polynomial
        } else {
            shifted
        }
    }

    /// Compresses one response (one bit per circuit output, in output
    /// declaration order) into a parallel-input word: output `o` lands on
    /// register position `o mod width`.
    #[inline]
    fn compress(&self, response: impl IntoIterator<Item = bool>) -> u64 {
        let mut incoming = 0u64;
        for (output, bit) in response.into_iter().enumerate() {
            if bit {
                incoming ^= 1u64 << (output as u32 % self.width);
            }
        }
        incoming
    }

    /// Folds one pattern's output response into the signature: one register
    /// step, then the parallel-input XOR.
    pub fn fold(&mut self, response: impl IntoIterator<Item = bool>) {
        let incoming = self.compress(response);
        self.state = Misr::step(self.state, self.polynomial) ^ incoming;
    }

    /// Folds a packed 64-pattern block of output responses — one `u64` per
    /// circuit output, as produced by
    /// [`CompiledCircuit::output_words`](lsiq_sim::levelized::CompiledCircuit::output_words)
    /// — in pattern order.  Only the low `pattern_count` slots are folded.
    pub fn fold_block(&mut self, output_words: &[u64], pattern_count: usize) {
        for slot in 0..pattern_count {
            self.fold(gather_slot(output_words, slot));
        }
    }

    /// Folds a packed block of *error* words (good XOR faulty responses)
    /// and returns the resulting error state.
    ///
    /// By linearity of the fold, the error state after any prefix of the
    /// test equals `faulty signature XOR good signature`; it is zero exactly
    /// when the two signatures agree.  When both the current error state and
    /// the block's error words are all zero the register provably stays at
    /// zero, so the slot loop is skipped — the dominant case for the
    /// undetected and already-resolved faults of a dictionary build.
    pub fn fold_error_block(&mut self, error_words: &[u64], pattern_count: usize) -> u64 {
        if self.state == 0 && error_words.iter().all(|&word| word == 0) {
            return 0;
        }
        self.fold_block(error_words, pattern_count);
        self.state
    }

    /// Folds a lane-wide packed chunk of output responses — one
    /// [`PackedBlock`] per circuit output, as produced by
    /// [`CompiledCircuit::output_chunks`](lsiq_sim::levelized::CompiledCircuit::output_chunks)
    /// — in pattern order.  Only the low `pattern_count` slots are folded;
    /// the `L = 1` case is exactly [`fold_block`](Misr::fold_block).
    pub fn fold_chunk<const L: usize>(
        &mut self,
        output_chunks: &[PackedBlock<L>],
        pattern_count: usize,
    ) {
        for slot in 0..pattern_count {
            self.fold(gather_chunk_slot(output_chunks, slot));
        }
    }

    /// Folds a lane-wide packed chunk of *error* responses and returns the
    /// resulting error state (the chunk analogue of
    /// [`fold_error_block`](Misr::fold_error_block), with the same
    /// quiet-chunk skip).
    pub fn fold_error_chunk<const L: usize>(
        &mut self,
        error_chunks: &[PackedBlock<L>],
        pattern_count: usize,
    ) -> u64 {
        if self.state == 0 && error_chunks.iter().all(|chunk| chunk.is_zero()) {
            return 0;
        }
        self.fold_chunk(error_chunks, pattern_count);
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsiq_stats::rng::{Rng, Xoshiro256StarStar};

    fn random_responses(outputs: usize, patterns: usize, seed: u64) -> Vec<Vec<bool>> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        (0..patterns)
            .map(|_| (0..outputs).map(|_| rng.next_bool(0.5)).collect())
            .collect()
    }

    /// Packs per-pattern responses into one word per output (≤ 64 patterns).
    fn pack(responses: &[Vec<bool>], outputs: usize) -> Vec<u64> {
        let mut words = vec![0u64; outputs];
        for (slot, response) in responses.iter().enumerate() {
            for (output, &bit) in response.iter().enumerate() {
                if bit {
                    words[output] |= 1u64 << slot;
                }
            }
        }
        words
    }

    #[test]
    fn fold_block_matches_serial_fold() {
        let responses = random_responses(7, 50, 1);
        let words = pack(&responses, 7);
        let mut serial = Misr::new(16);
        for response in &responses {
            serial.fold(response.iter().copied());
        }
        let mut packed = Misr::new(16);
        packed.fold_block(&words, 50);
        assert_eq!(serial.signature(), packed.signature());
    }

    #[test]
    fn fold_is_linear_over_xor() {
        // signature(a) ^ signature(b) == signature(a ^ b) — the identity the
        // error-stream dictionary build rests on.
        let a = random_responses(5, 40, 2);
        let b = random_responses(5, 40, 3);
        let fold_all = |streams: &[Vec<bool>]| {
            let mut misr = Misr::new(12);
            for response in streams {
                misr.fold(response.iter().copied());
            }
            misr.signature()
        };
        let xored: Vec<Vec<bool>> = a
            .iter()
            .zip(&b)
            .map(|(ra, rb)| ra.iter().zip(rb).map(|(&x, &y)| x ^ y).collect())
            .collect();
        assert_eq!(fold_all(&a) ^ fold_all(&b), fold_all(&xored));
    }

    #[test]
    fn fold_error_block_detects_exactly_signature_mismatches() {
        let good = random_responses(6, 64, 4);
        let good_words = pack(&good, 6);
        // Flip one response bit to make a "faulty" stream.
        let mut faulty = good.clone();
        faulty[17][2] = !faulty[17][2];
        let faulty_words = pack(&faulty, 6);
        let error_words: Vec<u64> = good_words
            .iter()
            .zip(&faulty_words)
            .map(|(&g, &f)| g ^ f)
            .collect();

        let mut good_misr = Misr::new(8);
        good_misr.fold_block(&good_words, 64);
        let mut faulty_misr = Misr::new(8);
        faulty_misr.fold_block(&faulty_words, 64);
        let mut error_misr = Misr::new(8);
        let error = error_misr.fold_error_block(&error_words, 64);
        assert_eq!(error, good_misr.signature() ^ faulty_misr.signature());

        // An all-zero error stream never leaves the zero state.
        let mut idle = Misr::new(8);
        assert_eq!(idle.fold_error_block(&[0, 0, 0, 0, 0, 0], 64), 0);
        assert_eq!(idle.signature(), 0);
    }

    #[test]
    fn chunk_folds_match_word_folds_at_every_lane_width() {
        fn check<const L: usize>() {
            let patterns = 64 * L - 7; // partial tail in the last lane
            let responses = random_responses(6, patterns, L as u64);
            let mut chunks = vec![PackedBlock::<L>::ZERO; 6];
            for (slot, response) in responses.iter().enumerate() {
                for (output, &bit) in response.iter().enumerate() {
                    if bit {
                        chunks[output].0[slot / 64] |= 1u64 << (slot % 64);
                    }
                }
            }
            let mut serial = Misr::new(16);
            for response in &responses {
                serial.fold(response.iter().copied());
            }
            let mut packed = Misr::new(16);
            packed.fold_chunk(&chunks, patterns);
            assert_eq!(serial.signature(), packed.signature(), "L = {L}");

            let mut error = Misr::new(16);
            assert_eq!(
                error.fold_error_chunk(&chunks, patterns),
                serial.signature()
            );
            let mut idle = Misr::new(16);
            assert_eq!(
                idle.fold_error_chunk(&[PackedBlock::<L>::ZERO; 6], patterns),
                0
            );
        }
        check::<1>();
        check::<4>();
        check::<8>();
    }

    #[test]
    fn wide_responses_fold_onto_the_register() {
        // 40 outputs into a 4-bit register: outputs o and o+4 share a slot.
        let mut misr = Misr::new(4);
        let mut response = [false; 40];
        response[3] = true;
        response[7] = true; // cancels response[3] on position 3
        misr.fold(response.iter().copied());
        assert_eq!(misr.signature(), 0);
        assert_eq!(misr.width(), 4);
    }

    #[test]
    fn reset_restores_the_session_start() {
        let mut misr = Misr::new(16);
        misr.fold([true, true, false]);
        assert_ne!(misr.signature(), 0);
        misr.reset();
        assert_eq!(misr.signature(), 0);
    }

    #[test]
    #[should_panic(expected = "no built-in MISR polynomial")]
    fn unsupported_width_panics() {
        let _ = Misr::new(10);
    }

    #[test]
    fn try_new_returns_typed_errors() {
        assert_eq!(Misr::try_new(16).expect("supported width"), Misr::new(16));
        let error = Misr::try_new(10).expect_err("unsupported width");
        assert_eq!(error.value(), "10");
        assert!(error.to_string().contains("4, 8, 12, 16"), "{error}");
    }
}
