//! Parameterizable Galois linear-feedback shift registers.
//!
//! A BIST pattern source is, at bottom, one LFSR; everything else in this
//! crate (the STUMPS phase shifter, the MISR compactor) is built on the
//! register implemented here.  The register is the *Galois* (internal-XOR)
//! form: on each step the state shifts right one bit and, when the bit
//! shifted out is 1, the tap polynomial is XORed into the remaining state.
//! With a primitive polynomial the state walks all `2^degree − 1` non-zero
//! values before repeating.
//!
//! [`GaloisLfsr::maximal`] selects a primitive polynomial from a built-in
//! table ([`maximal_polynomial`], the classical two/four-tap maximal-length
//! taps) so callers only choose a *degree*; [`GaloisLfsr::with_polynomial`]
//! accepts an arbitrary tap mask for experiments with deliberately
//! non-maximal feedback.
//!
//! The fixed-polynomial serial generator `lsiq_tpg::lfsr::Lfsr` of earlier
//! revisions is now a thin wrapper over a degree-64 register from this
//! module; its output sequence is bit-for-bit unchanged.

use lsiq_exec::ConfigError;
use lsiq_stats::rng::{Rng, SplitMix64};

/// The accepted-degree grammar shared by every fallible constructor that
/// validates against [`SUPPORTED_DEGREES`].
pub(crate) const DEGREE_GRAMMAR: &str = "one of 4, 8, 12, 16, 24, 32, 48 or 64";

/// The LFSR degrees for which [`maximal_polynomial`] carries a primitive
/// tap polynomial, in ascending order.
///
/// These are also the signature widths the [`Misr`](crate::misr::Misr)
/// compactor accepts: a MISR is the same register with parallel inputs.
pub const SUPPORTED_DEGREES: [u32; 8] = [4, 8, 12, 16, 24, 32, 48, 64];

/// The Galois tap mask of a maximal-length (primitive) polynomial of the
/// given degree, or `None` for degrees outside [`SUPPORTED_DEGREES`].
///
/// The mask has bit `t − 1` set for every feedback tap `x^t` of the
/// polynomial (the `x^degree` term is the feedback itself and the `+ 1` term
/// is the bit shifted out).  The taps are the classical maximal-length sets
/// (e.g. `x^16 + x^15 + x^13 + x^4 + 1` for degree 16); maximality of the
/// small degrees is pinned by an exhaustive period test in this module.
pub fn maximal_polynomial(degree: u32) -> Option<u64> {
    // Tap sets [d, a, b, c] meaning x^d + x^a + x^b + x^c + 1.
    let taps: &[u32] = match degree {
        4 => &[4, 3],
        8 => &[8, 6, 5, 4],
        12 => &[12, 6, 4, 1],
        16 => &[16, 15, 13, 4],
        24 => &[24, 23, 22, 17],
        32 => &[32, 22, 2, 1],
        48 => &[48, 47, 21, 20],
        64 => &[64, 63, 61, 60],
        _ => return None,
    };
    Some(taps.iter().fold(0u64, |mask, &tap| mask | 1 << (tap - 1)))
}

/// A mask with the low `degree` bits set (the register's state space).
pub(crate) fn state_mask(degree: u32) -> u64 {
    if degree >= 64 {
        u64::MAX
    } else {
        (1u64 << degree) - 1
    }
}

/// A Galois LFSR of configurable degree and tap polynomial.
///
/// ```
/// use lsiq_bist::lfsr::GaloisLfsr;
///
/// // A maximal degree-8 register visits all 255 non-zero states.
/// let mut lfsr = GaloisLfsr::maximal(8, 0xB15D);
/// let start = lfsr.state();
/// let period = (1..).find(|_| {
///     lfsr.step();
///     lfsr.state() == start
/// });
/// assert_eq!(period, Some(255));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaloisLfsr {
    state: u64,
    mask: u64,
    degree: u32,
}

impl GaloisLfsr {
    /// Creates a register of `degree` bits with the built-in maximal-length
    /// polynomial of that degree and a seed-derived starting state.
    ///
    /// The seed is expanded through [`SplitMix64`] to a dense starting state
    /// (sparse seeds such as `1` would otherwise emit long runs of zeros
    /// before the feedback taps populate the register); an expansion that
    /// truncates to zero falls back to the classic value `1`, since the
    /// all-zero state is the one fixed point of the recurrence.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is not in [`SUPPORTED_DEGREES`].
    pub fn maximal(degree: u32, seed: u64) -> GaloisLfsr {
        GaloisLfsr::try_maximal(degree, seed).unwrap_or_else(|_| {
            panic!("no built-in maximal polynomial of degree {degree} (supported: {SUPPORTED_DEGREES:?})")
        })
    }

    /// The fallible form of [`maximal`](GaloisLfsr::maximal), for degrees
    /// that arrive from user configuration (a
    /// [`StumpsConfig`](crate::stumps::StumpsConfig)'s register degree, a
    /// sweep specification): an unsupported degree becomes a typed
    /// [`ConfigError`] instead of a panic.
    pub fn try_maximal(degree: u32, seed: u64) -> Result<GaloisLfsr, ConfigError> {
        let mask = maximal_polynomial(degree).ok_or_else(|| {
            ConfigError::invalid_value("StumpsConfig::degree", degree.to_string(), DEGREE_GRAMMAR)
        })?;
        Ok(GaloisLfsr::with_polynomial(degree, mask, seed))
    }

    /// Creates a register with an explicit Galois tap mask (bit `t − 1` set
    /// for each feedback tap `x^t`); the seed is expanded exactly as in
    /// [`maximal`](GaloisLfsr::maximal).
    ///
    /// # Panics
    ///
    /// Panics if `degree` is 0 or exceeds 64, or if the tap mask has bits at
    /// or above `degree`.
    pub fn with_polynomial(degree: u32, polynomial: u64, seed: u64) -> GaloisLfsr {
        assert!(
            (1..=64).contains(&degree),
            "LFSR degree must be between 1 and 64, got {degree}"
        );
        assert!(
            polynomial & !state_mask(degree) == 0,
            "tap mask {polynomial:#x} has bits outside a degree-{degree} register"
        );
        let expanded = SplitMix64::seed_from_u64(seed).next_u64() & state_mask(degree);
        GaloisLfsr {
            state: if expanded == 0 { 1 } else { expanded },
            mask: polynomial,
            degree,
        }
    }

    /// The register's degree (state width in bits).
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// The Galois tap mask.
    pub fn polynomial(&self) -> u64 {
        self.mask
    }

    /// The current state (confined to the low `degree` bits).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Advances the register one step and returns the new state.
    pub fn step(&mut self) -> u64 {
        let lsb = self.state & 1;
        self.state >>= 1;
        if lsb == 1 {
            self.state ^= self.mask;
        }
        self.state
    }

    /// The register's serial output: reads the output bit (bit 0 of the
    /// state), then shifts.  This is the read-then-step order of a hardware
    /// register sampled on the same clock edge that advances it.
    pub fn next_bit(&mut self) -> bool {
        let bit = self.state & 1 == 1;
        self.step();
        bit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Walks the register from its current state until it recurs, counting
    /// steps.
    fn period(lfsr: &mut GaloisLfsr) -> u64 {
        let start = lfsr.state();
        let mut steps = 0u64;
        loop {
            lfsr.step();
            steps += 1;
            if lfsr.state() == start {
                return steps;
            }
        }
    }

    #[test]
    fn small_degrees_are_maximal_length() {
        // Exhaustive proof of primitivity for the cheap degrees: the state
        // sequence visits every non-zero value exactly once.
        for degree in [4u32, 8, 12, 16] {
            let mut lfsr = GaloisLfsr::maximal(degree, 7);
            assert_eq!(
                period(&mut lfsr),
                (1u64 << degree) - 1,
                "degree {degree} polynomial is not maximal"
            );
        }
    }

    #[test]
    fn large_degrees_do_not_recur_early() {
        // The big registers cannot be walked exhaustively; pin the absence
        // of short cycles instead.
        for degree in [24u32, 32, 48, 64] {
            let mut lfsr = GaloisLfsr::maximal(degree, 3);
            let start = lfsr.state();
            for step in 1..=100_000u64 {
                lfsr.step();
                assert_ne!(lfsr.state(), start, "degree {degree} recurred at {step}");
                assert_ne!(lfsr.state(), 0, "degree {degree} hit the zero state");
            }
        }
    }

    #[test]
    fn degree_64_matches_the_historical_fixed_polynomial() {
        // The pre-BIST `lsiq_tpg::lfsr::Lfsr` hard-wired this mask; the
        // table must keep producing it so the wrapper stays bit-identical.
        assert_eq!(maximal_polynomial(64), Some(0xD800_0000_0000_0000));
        assert_eq!(maximal_polynomial(5), None);
    }

    #[test]
    fn seed_expansion_is_dense_and_zero_safe() {
        let a = GaloisLfsr::maximal(16, 1);
        // A sparse seed still yields a dense (multi-bit) starting state.
        assert!(a.state().count_ones() > 2);
        // Distinct seeds give distinct states.
        assert_ne!(a.state(), GaloisLfsr::maximal(16, 2).state());
        // Degree confinement.
        assert_eq!(a.state() & !0xFFFF, 0);
    }

    #[test]
    fn serial_output_reads_before_stepping() {
        let mut lfsr = GaloisLfsr::maximal(8, 42);
        let state = lfsr.state();
        assert_eq!(lfsr.next_bit(), state & 1 == 1);
        assert_ne!(lfsr.state(), state);
    }

    #[test]
    #[should_panic(expected = "no built-in maximal polynomial")]
    fn unsupported_degree_panics() {
        let _ = GaloisLfsr::maximal(5, 1);
    }

    #[test]
    fn try_maximal_returns_typed_errors() {
        let lfsr = GaloisLfsr::try_maximal(16, 7).expect("supported degree");
        assert_eq!(lfsr, GaloisLfsr::maximal(16, 7));
        let error = GaloisLfsr::try_maximal(5, 7).expect_err("unsupported degree");
        assert_eq!(error.value(), "5");
        assert!(error.to_string().contains("4, 8, 12, 16"), "{error}");
    }

    #[test]
    #[should_panic(expected = "bits outside")]
    fn oversized_polynomial_panics() {
        let _ = GaloisLfsr::with_polynomial(8, 0x1FF, 1);
    }
}
