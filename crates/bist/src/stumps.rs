//! STUMPS-style parallel pattern generation.
//!
//! STUMPS ("Self-Testing Using MISR and Parallel Shift register sequence
//! generator") feeds many scan channels from one LFSR through a *phase
//! shifter* — a fixed XOR network that taps several register bits per
//! channel so adjacent channels do not carry time-shifted copies of the same
//! bit stream.  One register step loads one bit into every channel; a chain
//! of `L` flops per channel is filled by `L` steps.
//!
//! This module models that structure for the combinational devices of the
//! reproduction: the device's primary inputs stand in for the scan flops,
//! input `i` is fed by channel `i % channels` at shift `i / channels`, and
//! one [`StumpsGenerator::next_pattern`] call performs the
//! `ceil(width / channels)` register steps of one scan load.  The phase
//! shifter masks depend only on the channel index and the register degree —
//! like the hardware, the XOR network is part of the structure, not of the
//! seed — so two generators with the same geometry but different seeds walk
//! the same network from different starting states.

use crate::lfsr::{state_mask, GaloisLfsr};
use lsiq_exec::ConfigError;
use lsiq_sim::pattern::{Pattern, PatternSet};
use lsiq_stats::rng::{Rng, SplitMix64};

/// The geometry and seeding of one STUMPS generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StumpsConfig {
    /// Pattern width: the number of primary inputs (scan flops) to fill.
    pub width: usize,
    /// Number of scan channels fed in parallel; clamped to `1..=width`.
    pub channels: usize,
    /// Degree of the underlying maximal-length LFSR (one of
    /// [`SUPPORTED_DEGREES`](crate::lfsr::SUPPORTED_DEGREES)).
    pub degree: u32,
    /// Starting-state seed, expanded as in [`GaloisLfsr::maximal`].
    pub seed: u64,
}

impl StumpsConfig {
    /// A generator for `width`-bit patterns with the default geometry:
    /// 8 channels (or fewer for narrow devices) on a degree-64 register.
    pub fn with_width(width: usize, seed: u64) -> StumpsConfig {
        StumpsConfig {
            width,
            channels: 8,
            degree: 64,
            seed,
        }
    }
}

/// Domain-separation constant for the phase-shifter mask derivation
/// (`b"STUMPS"` as an integer).
const PHASE_SHIFTER_STREAM: u64 = 0x5354_554D_5053;

/// A multi-channel STUMPS pattern generator: one Galois LFSR, a fixed XOR
/// phase shifter, `channels` scan chains.
///
/// ```
/// use lsiq_bist::stumps::{StumpsConfig, StumpsGenerator};
///
/// let mut generator = StumpsGenerator::new(&StumpsConfig {
///     width: 16,
///     channels: 4,
///     degree: 32,
///     seed: 1981,
/// });
/// let first = generator.next_pattern();
/// let second = generator.next_pattern();
/// assert_eq!(first.width(), 16);
/// // The sequence is deterministic in the seed…
/// let mut replay = StumpsGenerator::new(&StumpsConfig {
///     width: 16,
///     channels: 4,
///     degree: 32,
///     seed: 1981,
/// });
/// assert_eq!(replay.next_pattern(), first);
/// // …and consecutive scan loads differ.
/// assert_ne!(first, second);
/// ```
#[derive(Debug, Clone)]
pub struct StumpsGenerator {
    lfsr: GaloisLfsr,
    width: usize,
    /// One tap mask per channel; channel `c`'s output bit is the parity of
    /// `state & phase_masks[c]`.
    phase_masks: Vec<u64>,
}

impl StumpsGenerator {
    /// Builds the generator: the register, and one phase-shifter mask per
    /// channel.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid — use
    /// [`try_new`](StumpsGenerator::try_new) for configuration that arrives
    /// from the user.
    pub fn new(config: &StumpsConfig) -> StumpsGenerator {
        StumpsGenerator::try_new(config)
            .unwrap_or_else(|error| panic!("invalid STUMPS configuration: {error}"))
    }

    /// The fallible form of [`new`](StumpsGenerator::new): an unsupported
    /// register degree or a channel count exceeding the register's distinct
    /// non-zero phase masks becomes a typed [`ConfigError`] instead of a
    /// panic.
    pub fn try_new(config: &StumpsConfig) -> Result<StumpsGenerator, ConfigError> {
        let lfsr = GaloisLfsr::try_maximal(config.degree, config.seed)?;
        let channels = config.channels.clamp(1, config.width.max(1));
        let state_bits = state_mask(config.degree);
        if channels as u64 > state_bits {
            return Err(ConfigError::invalid_value(
                "StumpsConfig::channels",
                channels.to_string(),
                "a channel count not exceeding the register's distinct non-zero phase masks",
            ));
        }
        // A fixed, structure-only XOR network: each channel taps a
        // seed-independent pseudo-random subset of the register.  Masks are
        // drawn by rejection so no two channels collide — colliding channels
        // would emit identical bit streams forever, which is exactly the
        // correlation the phase shifter exists to prevent (small degrees
        // have small mask spaces, so a plain truncated draw can repeat).
        let mut phase_masks: Vec<u64> = Vec::with_capacity(channels);
        for channel in 0..channels {
            let mut draws = SplitMix64::stream(PHASE_SHIFTER_STREAM, channel as u64);
            loop {
                let mask = draws.next_u64() & state_bits;
                if mask != 0 && !phase_masks.contains(&mask) {
                    phase_masks.push(mask);
                    break;
                }
            }
        }
        Ok(StumpsGenerator {
            lfsr,
            width: config.width,
            phase_masks,
        })
    }

    /// The number of scan channels.
    pub fn channels(&self) -> usize {
        self.phase_masks.len()
    }

    /// The number of register steps one scan load takes
    /// (`ceil(width / channels)`).
    pub fn shifts_per_pattern(&self) -> usize {
        self.width.div_ceil(self.phase_masks.len().max(1)).max(1)
    }

    /// Performs one scan load — [`shifts_per_pattern`](Self::shifts_per_pattern)
    /// register steps, each filling one flop of every channel — and returns
    /// the loaded pattern.
    pub fn next_pattern(&mut self) -> Pattern {
        let channels = self.phase_masks.len();
        let mut bits = vec![false; self.width];
        for shift in 0..self.shifts_per_pattern() {
            let state = self.lfsr.state();
            for (channel, &mask) in self.phase_masks.iter().enumerate() {
                let input = shift * channels + channel;
                if input < self.width {
                    bits[input] = (state & mask).count_ones() & 1 == 1;
                }
            }
            self.lfsr.step();
        }
        Pattern::from_bits(bits)
    }

    /// Generates an ordered set of `count` patterns (scan loads).
    pub fn generate(mut self, count: usize) -> PatternSet {
        (0..count).map(|_| self.next_pattern()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(width: usize, channels: usize, seed: u64) -> StumpsConfig {
        StumpsConfig {
            width,
            channels,
            degree: 32,
            seed,
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a = StumpsGenerator::new(&config(12, 4, 1)).generate(50);
        let b = StumpsGenerator::new(&config(12, 4, 1)).generate(50);
        let c = StumpsGenerator::new(&config(12, 4, 2)).generate(50);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn width_and_channel_clamping() {
        for (width, channels) in [(10, 3), (5, 8), (1, 1), (7, 7)] {
            let generator = StumpsGenerator::new(&config(width, channels, 9));
            assert!(generator.channels() <= width.max(1));
            assert!(generator.channels() >= 1);
            let mut g = generator;
            assert_eq!(g.next_pattern().width(), width);
        }
    }

    #[test]
    fn channels_are_decorrelated() {
        // With one LFSR and no phase shifter, channel c would be channel 0
        // delayed by c steps.  Check the masks differ and the per-channel
        // bit streams are not shifted copies over a window.
        let mut generator = StumpsGenerator::new(&config(8, 4, 5));
        assert!(generator
            .phase_masks
            .windows(2)
            .all(|pair| pair[0] != pair[1]));
        let patterns: Vec<Pattern> = (0..64).map(|_| generator.next_pattern()).collect();
        // Stream of channel c = bits {c, c+channels, ...} across patterns.
        let stream = |channel: usize| -> Vec<bool> {
            patterns
                .iter()
                .flat_map(|p| (0..2).map(move |shift| p.bit(shift * 4 + channel)))
                .collect()
        };
        let s0 = stream(0);
        for channel in 1..4 {
            let sc = stream(channel);
            for delay in 0..8usize {
                assert!(
                    s0[delay..] != sc[..sc.len() - delay],
                    "channel {channel} is channel 0 delayed by {delay}"
                );
            }
        }
    }

    #[test]
    fn phase_masks_are_distinct_even_for_tiny_degrees() {
        // Degree 4 has only 15 non-zero masks; rejection drawing must still
        // hand every channel its own.
        for channels in [2usize, 8, 15] {
            let generator = StumpsGenerator::new(&StumpsConfig {
                width: 15,
                channels,
                degree: 4,
                seed: 1,
            });
            let mut masks = generator.phase_masks.clone();
            masks.sort_unstable();
            masks.dedup();
            assert_eq!(masks.len(), channels, "{channels} channels");
        }
    }

    #[test]
    #[should_panic(expected = "distinct non-zero phase masks")]
    fn more_channels_than_masks_panics() {
        let _ = StumpsGenerator::new(&StumpsConfig {
            width: 40,
            channels: 16,
            degree: 4,
            seed: 1,
        });
    }

    #[test]
    fn try_new_returns_typed_errors() {
        let bad_degree = StumpsConfig {
            width: 8,
            channels: 2,
            degree: 5,
            seed: 1,
        };
        let error = StumpsGenerator::try_new(&bad_degree).expect_err("bad degree");
        assert_eq!(error.value(), "5");
        let bad_channels = StumpsConfig {
            width: 40,
            channels: 16,
            degree: 4,
            seed: 1,
        };
        let error = StumpsGenerator::try_new(&bad_channels).expect_err("too many channels");
        assert_eq!(error.value(), "16");
        assert!(error.to_string().contains("phase masks"), "{error}");
        assert!(StumpsGenerator::try_new(&config(12, 4, 1)).is_ok());
    }

    #[test]
    fn patterns_are_reasonably_balanced() {
        let patterns = StumpsGenerator::new(&config(16, 8, 77)).generate(256);
        let ones: usize = patterns
            .iter()
            .flat_map(|p| p.bits().iter().filter(|&&b| b))
            .count();
        let total = 256 * 16;
        let fraction = ones as f64 / total as f64;
        assert!(
            (0.4..0.6).contains(&fraction),
            "one-density {fraction} far from 0.5"
        );
    }

    #[test]
    fn default_geometry_is_sane() {
        let config = StumpsConfig::with_width(40, 3);
        assert_eq!(config.channels, 8);
        assert_eq!(config.degree, 64);
        let generator = StumpsGenerator::new(&config);
        assert_eq!(generator.shifts_per_pattern(), 5);
    }
}
