//! Aliasing accounting and effective coverage.
//!
//! The paper's quality model consumes one number per test: the fault
//! coverage `f = m / N`.  Under BIST the number the model *should* consume
//! is smaller than the fault simulator reports, because an aliased fault —
//! detected by the pattern set, masked by the signature compare — ships
//! exactly like an untested one.  [`AliasingReport`] makes that correction
//! explicit: it counts the aliased faults of a
//! [`SignatureDictionary`] exactly, compares the observed aliasing
//! probability with the classical `2^−k` estimate for a `k`-bit MISR, and
//! exposes the *effective coverage* that replaces `f` in the defect-level
//! equations (eq. 7/8) when the test is applied through a compactor.

use crate::signature::SignatureDictionary;

/// The aliasing outcome of one self-test over one fault universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AliasingReport {
    /// Size `N` of the fault universe.
    pub universe_size: usize,
    /// Faults whose responses differ at some applied pattern (detections
    /// before compaction — the numerator of the raw coverage).
    pub raw_detected: usize,
    /// Faults the signature compare actually catches.
    pub signature_detected: usize,
    /// Detected-but-masked faults (`raw_detected − signature_detected`).
    pub aliased: usize,
    /// MISR width `k`.
    pub signature_width: u32,
    /// Number of signature readouts.
    pub sessions: usize,
}

impl AliasingReport {
    /// Summarises a signature dictionary.
    pub fn from_dictionary(dictionary: &SignatureDictionary) -> AliasingReport {
        let raw_detected = dictionary.raw_detected_count();
        let signature_detected = dictionary.signature_detected_count();
        AliasingReport {
            universe_size: dictionary.len(),
            raw_detected,
            signature_detected,
            aliased: raw_detected - signature_detected,
            signature_width: dictionary.signature_width(),
            sessions: dictionary.sessions(),
        }
    }

    /// The pre-compaction fault coverage `f = raw_detected / N`.
    pub fn raw_coverage(&self) -> f64 {
        if self.universe_size == 0 {
            0.0
        } else {
            self.raw_detected as f64 / self.universe_size as f64
        }
    }

    /// The effective (aliasing-corrected) coverage
    /// `f_eff = signature_detected / N` — never above
    /// [`raw_coverage`](Self::raw_coverage), converging to it as the
    /// signature width grows.
    pub fn effective_coverage(&self) -> f64 {
        if self.universe_size == 0 {
            0.0
        } else {
            self.signature_detected as f64 / self.universe_size as f64
        }
    }

    /// The observed aliasing probability: the fraction of detected faults
    /// the compactor masked (0 when nothing is detected).
    pub fn aliasing_fraction(&self) -> f64 {
        if self.raw_detected == 0 {
            0.0
        } else {
            self.aliased as f64 / self.raw_detected as f64
        }
    }

    /// The classical `2^−k` aliasing estimate for a `k`-bit maximal-length
    /// MISR (per fault, over a long random error stream).
    pub fn estimated_aliasing_fraction(&self) -> f64 {
        (self.signature_width as f64 * -(2.0f64.ln())).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::BistPlan;
    use lsiq_fault::universe::FaultUniverse;
    use lsiq_netlist::library;
    use lsiq_sim::pattern::{Pattern, PatternSet};

    fn report(plan: BistPlan) -> AliasingReport {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..32).map(|v| Pattern::from_integer(v, 5)).collect();
        let dictionary = SignatureDictionary::build(&circuit, &universe, &patterns, &plan);
        AliasingReport::from_dictionary(&dictionary)
    }

    #[test]
    fn effective_coverage_never_exceeds_raw() {
        for width in [4u32, 8, 16] {
            let report = report(BistPlan {
                session_len: 4,
                signature_width: width,
            });
            assert!(report.effective_coverage() <= report.raw_coverage() + 1e-15);
            assert_eq!(
                report.aliased,
                report.raw_detected - report.signature_detected
            );
            assert!(
                (report.estimated_aliasing_fraction() - 0.5f64.powi(width as i32)).abs() < 1e-12
            );
        }
    }

    #[test]
    fn exhaustive_wide_signature_report_is_clean() {
        let report = report(BistPlan {
            session_len: 8,
            signature_width: 16,
        });
        assert_eq!(report.raw_detected, report.universe_size);
        assert_eq!(report.aliased, 0);
        assert!((report.raw_coverage() - 1.0).abs() < 1e-12);
        assert!((report.effective_coverage() - 1.0).abs() < 1e-12);
        assert_eq!(report.aliasing_fraction(), 0.0);
        assert_eq!(report.sessions, 4);
    }

    #[test]
    fn empty_universe_yields_zero_coverages() {
        let circuit = library::c17();
        let universe = FaultUniverse::from_faults(Vec::new());
        let patterns: PatternSet = (0..4).map(|v| Pattern::from_integer(v, 5)).collect();
        let dictionary =
            SignatureDictionary::build(&circuit, &universe, &patterns, &BistPlan::default());
        let report = AliasingReport::from_dictionary(&dictionary);
        assert_eq!(report.raw_coverage(), 0.0);
        assert_eq!(report.effective_coverage(), 0.0);
        assert_eq!(report.aliasing_fraction(), 0.0);
    }
}
