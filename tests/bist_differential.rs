//! Differential tests for the BIST subsystem, in the style of
//! `tests/lot_differential.rs`: every parallel or configurable stage must be
//! *byte-identical* across worker counts and fault-simulation engines.
//!
//! * the `SignatureDictionary` build (fault-sharded over the pool) at 1, 2
//!   and 2×cores workers,
//! * `SignatureTester` lot outcomes through `ParallelLotRunner::test_lot_bist`
//!   at the same worker ladder,
//! * a suite-driven BIST line on alu4 across all five engines (the suite,
//!   and therefore every signature, must not depend on the engine), and
//! * (release builds) whole `Session::run_production_line` passes in BIST
//!   mode across engines and worker counts on the reproduction device.

use lsi_quality::bist::signature::{BistPlan, SignatureDictionary};
use lsi_quality::bist::stumps::{StumpsConfig, StumpsGenerator};
use lsi_quality::exec::{EngineKind, ExecutionContext, RunConfig, TestMode};
use lsi_quality::fault::universe::FaultUniverse;
use lsi_quality::manufacturing::bist_test::SignatureTester;
use lsi_quality::manufacturing::lot::{ChipLot, ModelLotConfig};
use lsi_quality::manufacturing::pipeline::ParallelLotRunner;
use lsi_quality::netlist::generator::pipelined_datapath;
use lsi_quality::netlist::library;
use lsi_quality::netlist::scan::insert_scan;
use lsi_quality::tpg::suite::TestSuiteBuilder;
use lsi_quality::{BistSweepSpec, LineSpec, Session};

fn cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn worker_ladder() -> [usize; 3] {
    [1, 2, 2 * cores()]
}

#[test]
fn signature_dictionary_is_worker_count_invariant() {
    let circuit = library::alu4();
    let universe = FaultUniverse::full(&circuit);
    let patterns = StumpsGenerator::new(&StumpsConfig::with_width(
        circuit.primary_inputs().len(),
        42,
    ))
    .generate(128);
    let plan = BistPlan {
        session_len: 32,
        signature_width: 8,
    };
    let reference = SignatureDictionary::build_in(
        &ExecutionContext::new(1),
        &circuit,
        &universe,
        &patterns,
        &plan,
    );
    for workers in worker_ladder() {
        let context = ExecutionContext::new(workers);
        // Two builds per context: the pool is reused, not respawned.
        for _ in 0..2 {
            let dictionary =
                SignatureDictionary::build_in(&context, &circuit, &universe, &patterns, &plan);
            assert_eq!(reference, dictionary, "workers = {workers}");
        }
    }
}

#[test]
fn signature_tester_lot_outcomes_are_worker_count_invariant() {
    let circuit = library::alu4();
    let universe = FaultUniverse::full(&circuit);
    let patterns =
        StumpsGenerator::new(&StumpsConfig::with_width(circuit.primary_inputs().len(), 7))
            .generate(96);
    let dictionary = SignatureDictionary::build(
        &circuit,
        &universe,
        &patterns,
        &BistPlan {
            session_len: 16,
            signature_width: 8,
        },
    );
    let lot = ChipLot::from_model(&ModelLotConfig {
        chips: 900,
        yield_fraction: 0.25,
        n0: 5.0,
        fault_universe_size: universe.len(),
        seed: 3,
    });
    let serial = SignatureTester::new(&dictionary).test_lot(&lot);
    for workers in worker_ladder() {
        let context = ExecutionContext::new(workers);
        let records = ParallelLotRunner::with_context(&context).test_lot_bist(&dictionary, &lot);
        assert_eq!(serial, records, "workers = {workers}");
        let explicit = ParallelLotRunner::new()
            .with_threads(workers)
            .test_lot_bist(&dictionary, &lot);
        assert_eq!(serial, explicit, "threads = {workers}");
    }
}

#[test]
fn suite_driven_bist_outcomes_are_engine_invariant() {
    // The ordered suite must not depend on the engine that evaluated it, so
    // neither can anything downstream: the signature dictionary built over
    // the suite's patterns, nor the lot outcomes tested against it.
    let circuit = library::alu4();
    let universe = FaultUniverse::full(&circuit);
    let plan = BistPlan {
        session_len: 16,
        signature_width: 16,
    };
    let lot_config = ModelLotConfig {
        chips: 600,
        yield_fraction: 0.3,
        n0: 4.0,
        fault_universe_size: universe.len(),
        seed: 11,
    };
    let mut reference = None;
    for engine in EngineKind::ALL {
        let suite = TestSuiteBuilder {
            engine,
            ..TestSuiteBuilder::default()
        }
        .build(&circuit, &universe);
        let dictionary = SignatureDictionary::build(&circuit, &universe, &suite.patterns, &plan);
        let lot = ChipLot::from_model(&lot_config);
        let records = SignatureTester::new(&dictionary).test_lot(&lot);
        match &reference {
            None => reference = Some((suite.patterns.clone(), dictionary, records)),
            Some((patterns, reference_dictionary, reference_records)) => {
                assert_eq!(patterns.as_slice(), suite.patterns.as_slice(), "{engine}");
                assert_eq!(reference_dictionary, &dictionary, "{engine}");
                assert_eq!(reference_records, &records, "{engine}");
            }
        }
    }
}

#[test]
fn signature_sweep_is_lane_and_cache_invariant_across_the_worker_ladder() {
    // The packed-lane layer under the BIST stack: the whole sweep grid —
    // signatures, first-failure patterns, session snapshots — must be
    // byte-identical at lanes 1, 4 and 8, at every worker count, and with
    // a shared GoodMachineCache replaying the fault-free simulation.
    use lsi_quality::exec::LaneWidth;
    use lsi_quality::sim::cache::GoodMachineCache;

    let circuit = library::alu4();
    let universe = FaultUniverse::full(&circuit);
    let patterns = StumpsGenerator::new(&StumpsConfig::with_width(
        circuit.primary_inputs().len(),
        1981,
    ))
    .generate(160);
    let widths = [8u32, 16];
    let lengths = [48usize, 100, 160];
    let reference = SignatureDictionary::build_sweep_in(
        &ExecutionContext::new(1),
        &circuit,
        &universe,
        &patterns,
        32,
        &widths,
        &lengths,
    );
    let cache = GoodMachineCache::new();
    for lanes in LaneWidth::EXPLICIT {
        for workers in worker_ladder() {
            let context = ExecutionContext::new(workers);
            let sweep = SignatureDictionary::build_sweep_cached(
                &context,
                &circuit,
                &universe,
                &patterns,
                32,
                &widths,
                &lengths,
                lanes,
                Some(&cache),
            );
            assert_eq!(reference, sweep, "lanes = {lanes}, workers = {workers}");
        }
    }
    assert!(
        cache.misses() > 0 && cache.hits() > 0,
        "the matrix must both populate and replay the cache (misses={}, hits={})",
        cache.misses(),
        cache.hits()
    );
}

#[test]
fn scan_bist_sweep_is_one_pass_and_worker_invariant() {
    // The full-scan BIST sweep on a sequential device: the 42-flip-flop
    // pipelined datapath is scan-inserted, its capture-mode test view swept
    // through `run_bist_sweep_on` — which performs exactly one
    // fault-simulation pass at the maximum length and derives every
    // shorter test (the 70-pattern cell ends mid-session) from recorded
    // first-failure patterns and partial-session snapshots.  The grid must
    // be byte-identical across the whole worker ladder.
    let sequential = pipelined_datapath(8);
    let scan = insert_scan(&sequential, 3).expect("3 chains fit 42 cells");
    assert!(scan.cell_count() >= 32, "{} cells", scan.cell_count());
    let view = scan.test_view().clone();
    let spec = BistSweepSpec {
        test_lengths: vec![24, 48, 70, 96],
        signature_widths: vec![4, 8, 16],
        session_len: 32,
        channels: 4,
        yield_fraction: 0.2,
        n0: 4.0,
        full_size: false,
    };
    let reference = Session::new(RunConfig::default().with_workers(1))
        .run_bist_sweep_on(&view, &spec)
        .expect("valid sweep spec");
    assert_eq!(reference.rows.len(), 12);
    for row in &reference.rows {
        assert!(row.raw_coverage > 0.0, "vacuous sweep cell: {row:?}");
        assert!(row.effective_coverage <= row.raw_coverage + 1e-15);
        assert_eq!(row.sessions, row.test_length.div_ceil(spec.session_len));
    }
    // Longer tests never lose raw coverage (prefix monotonicity of the
    // single pass).
    for widths in 0..spec.signature_widths.len() {
        let column: Vec<f64> = reference
            .rows
            .iter()
            .skip(widths)
            .step_by(spec.signature_widths.len())
            .map(|row| row.raw_coverage)
            .collect();
        assert!(
            column.windows(2).all(|pair| pair[0] <= pair[1] + 1e-15),
            "raw coverage not monotone in test length: {column:?}"
        );
    }
    for workers in worker_ladder() {
        for lanes in [
            lsi_quality::exec::LaneWidth::X1,
            lsi_quality::exec::LaneWidth::X8,
        ] {
            let sweep = Session::new(RunConfig::default().with_workers(workers).with_lanes(lanes))
                .run_bist_sweep_on(&view, &spec)
                .expect("valid sweep spec");
            assert_eq!(
                reference.rows, sweep.rows,
                "workers = {workers}, lanes = {lanes}"
            );
            assert_eq!(reference.universe_size, sweep.universe_size);
        }
    }
}

#[test]
fn bist_mode_session_lines_are_engine_and_worker_invariant() {
    // Whole production-line passes on the reproduction device are a
    // release-build concern (the release CI jobs run this); debug builds
    // skip rather than dominate `cargo test`.
    if cfg!(debug_assertions) {
        eprintln!("skipped in debug builds; run with --release");
        return;
    }
    let spec = LineSpec {
        chips: 200,
        yield_fraction: 0.15,
        n0: 6.0,
        full_size: false,
    };
    let reference = Session::new(
        RunConfig::default()
            .with_workers(1)
            .with_test_mode(TestMode::Bist),
    )
    .run_production_line(&spec)
    .expect("no scan configured");
    let reference_rows = reference.experiment.rows();
    for engine in EngineKind::ALL {
        for workers in [2, 2 * cores()] {
            let line = Session::new(
                RunConfig::default()
                    .with_engine(engine)
                    .with_workers(workers)
                    .with_test_mode(TestMode::Bist),
            )
            .run_production_line(&spec)
            .expect("no scan configured");
            assert_eq!(line.test_mode, TestMode::Bist);
            assert_eq!(
                reference_rows,
                line.experiment.rows(),
                "engine = {engine}, workers = {workers}"
            );
            assert_eq!(reference.observed_yield, line.observed_yield);
            assert_eq!(reference.observed_n0, line.observed_n0);
        }
    }
}
