//! Integration test: the fault-simulation algorithms and the two logic
//! simulators agree with each other on generated circuits, and property-style
//! checks (randomised over seeded parameter draws) hold for the core model
//! functions.

use lsi_quality::fault::deductive::DeductiveSimulator;
use lsi_quality::fault::ppsfp::PpsfpSimulator;
use lsi_quality::fault::serial::SerialSimulator;
use lsi_quality::fault::simulator::FaultSimulator;
use lsi_quality::fault::universe::FaultUniverse;
use lsi_quality::netlist::generator::{random_circuit, RandomCircuitConfig};
use lsi_quality::sim::event::EventSim;
use lsi_quality::sim::levelized::CompiledCircuit;
use lsi_quality::sim::pattern::{Pattern, PatternSet};
use lsi_quality::stats::rng::{Rng, Xoshiro256StarStar};

/// Number of randomised cases each property-style test draws.
const PROPERTY_CASES: usize = 64;

fn uniform_in(rng: &mut impl Rng, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.next_f64()
}

fn random_patterns(width: usize, count: usize, seed: u64) -> PatternSet {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    (0..count)
        .map(|_| Pattern::from_bits((0..width).map(|_| rng.next_bool(0.5))))
        .collect()
}

#[test]
fn fault_simulators_agree_on_generated_circuits() {
    for seed in 0..3u64 {
        let circuit = random_circuit(&RandomCircuitConfig {
            inputs: 14,
            gates: 150,
            seed,
            ..RandomCircuitConfig::default()
        });
        let universe = FaultUniverse::full(&circuit);
        let patterns = random_patterns(14, 96, seed + 100);
        let serial = SerialSimulator::new(&circuit).run(&universe, &patterns);
        let ppsfp = PpsfpSimulator::new(&circuit).run(&universe, &patterns);
        let deductive = DeductiveSimulator::new(&circuit).run(&universe, &patterns);
        for index in 0..universe.len() {
            let fault = universe.get(index).expect("valid").describe(&circuit);
            assert_eq!(
                serial.state(index).first_pattern(),
                ppsfp.state(index).first_pattern(),
                "seed {seed}, fault {fault}: serial vs ppsfp"
            );
            assert_eq!(
                serial.state(index).first_pattern(),
                deductive.state(index).first_pattern(),
                "seed {seed}, fault {fault}: serial vs deductive"
            );
        }
    }
}

#[test]
fn logic_simulators_agree_on_generated_circuits() {
    for seed in 0..3u64 {
        let circuit = random_circuit(&RandomCircuitConfig {
            inputs: 16,
            gates: 250,
            seed: seed + 7,
            ..RandomCircuitConfig::default()
        });
        let compiled = CompiledCircuit::new(&circuit);
        let mut event = EventSim::new(&circuit);
        for pattern in random_patterns(16, 80, seed).iter() {
            assert_eq!(event.simulate(pattern), compiled.outputs(pattern));
        }
    }
}

#[test]
fn reject_rate_stays_in_unit_interval_and_decreases() {
    use lsi_quality::quality::params::{FaultCoverage, ModelParams, Yield};
    use lsi_quality::quality::reject::field_reject_rate;
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xA11CE);
    for case in 0..PROPERTY_CASES {
        let y = uniform_in(&mut rng, 0.01, 0.99);
        let n0 = uniform_in(&mut rng, 1.0, 40.0);
        let f = uniform_in(&mut rng, 0.0, 1.0);
        let params = ModelParams::new(Yield::new(y).unwrap(), n0).unwrap();
        let coverage = FaultCoverage::new(f).unwrap();
        let rate = field_reject_rate(&params, coverage).value();
        assert!((0.0..=1.0).contains(&rate), "case {case}: rate {rate}");
        // Monotone: a bit more coverage can only reduce the reject rate.
        let more = FaultCoverage::new((f + 0.05).min(1.0)).unwrap();
        let better = field_reject_rate(&params, more).value();
        assert!(better <= rate + 1e-12, "case {case}: {better} > {rate}");
        // Bounded above by the untested reject rate 1 - y.
        assert!(rate <= 1.0 - y + 1e-12, "case {case}");
    }
}

#[test]
fn rejected_fraction_is_a_cdf_like_curve() {
    use lsi_quality::quality::detection::rejected_fraction;
    use lsi_quality::quality::params::{FaultCoverage, ModelParams, Yield};
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xB0B);
    for case in 0..PROPERTY_CASES {
        let y = uniform_in(&mut rng, 0.01, 0.99);
        let n0 = uniform_in(&mut rng, 1.0, 40.0);
        let f = uniform_in(&mut rng, 0.0, 1.0);
        let params = ModelParams::new(Yield::new(y).unwrap(), n0).unwrap();
        let value = rejected_fraction(&params, FaultCoverage::new(f).unwrap());
        assert!(value >= -1e-12, "case {case}");
        assert!(value <= 1.0 - y + 1e-12, "case {case}");
        let further = rejected_fraction(&params, FaultCoverage::new((f + 0.05).min(1.0)).unwrap());
        assert!(further + 1e-12 >= value, "case {case}");
    }
}

#[test]
fn required_coverage_meets_its_target() {
    use lsi_quality::quality::coverage_requirement::required_fault_coverage;
    use lsi_quality::quality::params::{ModelParams, RejectRate, Yield};
    use lsi_quality::quality::reject::field_reject_rate;
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xC0FFEE);
    for case in 0..PROPERTY_CASES {
        let y = uniform_in(&mut rng, 0.01, 0.95);
        let n0 = uniform_in(&mut rng, 1.0, 30.0);
        let r = uniform_in(&mut rng, 0.0005, 0.05);
        let params = ModelParams::new(Yield::new(y).unwrap(), n0).unwrap();
        let target = RejectRate::new(r).unwrap();
        let coverage = required_fault_coverage(&params, target).unwrap();
        assert!(
            field_reject_rate(&params, coverage).value() <= r + 1e-9,
            "case {case}: y={y} n0={n0} r={r}"
        );
    }
}

#[test]
fn escape_probability_is_decreasing_in_coverage() {
    use lsi_quality::quality::escape::{EscapeApproximation, EscapeProbability};
    let universe = 1000u64;
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xDEC);
    for case in 0..PROPERTY_CASES {
        let covered = rng.next_bounded(1000);
        let n = 1 + rng.next_bounded(19);
        let low = EscapeProbability::new(universe, covered).unwrap();
        let high = EscapeProbability::new(universe, (covered + 50).min(universe)).unwrap();
        let escape_low = low.escape(n, EscapeApproximation::Exact).unwrap();
        let escape_high = high.escape(n, EscapeApproximation::Exact).unwrap();
        assert!(escape_high <= escape_low + 1e-12, "case {case}");
        assert!((0.0..=1.0).contains(&escape_low), "case {case}");
    }
}

#[test]
fn pattern_packing_round_trips() {
    use lsi_quality::sim::pattern::{Pattern, PatternSet};
    let width = 12;
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xFACADE);
    for _ in 0..PROPERTY_CASES {
        let count = 1 + rng.next_index(99);
        let set: PatternSet = (0..count)
            .map(|_| Pattern::from_integer(rng.next_bounded(1 << 12), width))
            .collect();
        for block in 0..set.block_count() {
            let (words, packed) = set.pack_block(width, block);
            for slot in 0..packed {
                let pattern = set.get(block * 64 + slot).unwrap();
                for (input, &word) in words.iter().enumerate() {
                    assert_eq!((word >> slot) & 1 == 1, pattern.bit(input));
                }
            }
        }
    }
}
