//! Adaptive (`LSIQ_ENGINE=auto`) engine selection: the resolved engine
//! follows the documented gate-count thresholds, and a session under
//! `auto` produces suites and sweeps byte-identical to a session pinned
//! to the engine `auto` resolves to — engine choice is a speed knob,
//! never a results knob.

use lsi_quality::{BistSweepSpec, Session};
use lsiq_exec::{EngineKind, RunConfig};
use lsiq_fault::universe::FaultUniverse;
use lsiq_netlist::library;

#[test]
fn auto_resolution_follows_the_size_thresholds_through_the_session() {
    let session = Session::new(RunConfig::default().with_engine_auto());
    assert!(session.config().engine_is_auto());
    let alu4 = library::alu4();
    assert_eq!(
        session.line_suite_builder(&alu4).engine,
        EngineKind::auto_for(alu4.gate_count()),
        "the line builder must resolve auto per device"
    );
    let reduced = Session::reproduction_circuit(false);
    assert_eq!(
        session.line_suite_builder(&reduced).engine,
        EngineKind::auto_for(reduced.gate_count())
    );
    // The two devices sit in different size bands, so auto genuinely
    // adapts rather than collapsing to one engine.
    assert_ne!(
        EngineKind::auto_for(alu4.gate_count()),
        EngineKind::auto_for(reduced.gate_count())
    );
}

#[test]
fn auto_and_pinned_engines_build_byte_identical_suites() {
    let circuit = library::alu4();
    let universe = FaultUniverse::full(&circuit);
    let auto_session = Session::new(RunConfig::default().with_engine_auto());
    let resolved = EngineKind::auto_for(circuit.gate_count());
    let pinned_session = Session::new(RunConfig::default().with_engine(resolved));

    let build = |session: &Session| {
        session.line_suite_builder(&circuit).build_cached(
            Some(session.context()),
            Some(session.good_machine_cache()),
            &circuit,
            &universe,
        )
    };
    let auto_suite = build(&auto_session);
    let pinned_suite = build(&pinned_session);
    assert_eq!(auto_suite.patterns, pinned_suite.patterns);
    assert_eq!(
        auto_suite.dictionary.first_patterns(),
        pinned_suite.dictionary.first_patterns()
    );
    assert_eq!(
        auto_suite.coverage_curve.cumulative(),
        pinned_suite.coverage_curve.cumulative()
    );
    assert_eq!(
        auto_suite.deterministic_patterns,
        pinned_suite.deterministic_patterns
    );
}

#[test]
fn auto_and_pinned_engines_agree_on_a_bist_sweep() {
    let circuit = library::alu4();
    let spec = BistSweepSpec {
        test_lengths: vec![64, 128],
        signature_widths: vec![8, 16],
        session_len: 32,
        channels: 4,
        yield_fraction: 0.07,
        n0: 8.0,
        full_size: false,
    };
    let auto_sweep = Session::new(RunConfig::default().with_engine_auto())
        .run_bist_sweep_on(&circuit, &spec)
        .expect("auto sweep");
    let resolved = EngineKind::auto_for(circuit.gate_count());
    let pinned_sweep = Session::new(RunConfig::default().with_engine(resolved))
        .run_bist_sweep_on(&circuit, &spec)
        .expect("pinned sweep");
    assert_eq!(auto_sweep, pinned_sweep);
}
