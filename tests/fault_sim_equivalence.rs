//! Property-style cross-check of the five fault-simulation engines.
//!
//! Serial, PPSFP, deductive, the multi-threaded parallel engine and the
//! event-driven incremental engine must report *identical* detected-fault
//! sets (and identical first detecting patterns) on every circuit, with and
//! without fault dropping.  A timed check also pins down the performance
//! contract: the parallel engine must beat the scalar serial reference in
//! wall-clock time.

use lsi_quality::fault::deductive::DeductiveSimulator;
use lsi_quality::fault::incremental::IncrementalSimulator;
use lsi_quality::fault::list::FaultList;
use lsi_quality::fault::parallel::ParallelSimulator;
use lsi_quality::fault::ppsfp::PpsfpSimulator;
use lsi_quality::fault::serial::SerialSimulator;
use lsi_quality::fault::simulator::FaultSimulator;
use lsi_quality::fault::universe::FaultUniverse;
use lsi_quality::netlist::circuit::Circuit;
use lsi_quality::netlist::generator::{random_circuit, RandomCircuitConfig};
use lsi_quality::netlist::library;
use lsi_quality::sim::pattern::{Pattern, PatternSet};
use lsi_quality::stats::rng::{Rng, Xoshiro256StarStar};
use std::time::{Duration, Instant};

fn random_patterns(width: usize, count: usize, seed: u64) -> PatternSet {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    (0..count)
        .map(|_| Pattern::from_bits((0..width).map(|_| rng.next_bool(0.5))))
        .collect()
}

fn generated_circuit() -> Circuit {
    random_circuit(&RandomCircuitConfig {
        inputs: 13,
        gates: 180,
        seed: 2026,
        ..RandomCircuitConfig::default()
    })
}

/// Runs all five engines with the given dropping mode and returns
/// `(engine name, fault list)` pairs.
fn run_all_engines(
    circuit: &Circuit,
    universe: &FaultUniverse,
    patterns: &PatternSet,
    fault_dropping: bool,
) -> Vec<(&'static str, FaultList)> {
    let serial = SerialSimulator::new(circuit).with_fault_dropping(fault_dropping);
    let ppsfp = PpsfpSimulator::new(circuit).with_fault_dropping(fault_dropping);
    let deductive = DeductiveSimulator::new(circuit).with_fault_dropping(fault_dropping);
    let parallel = ParallelSimulator::new(circuit).with_fault_dropping(fault_dropping);
    let incremental = IncrementalSimulator::new(circuit).with_fault_dropping(fault_dropping);
    let engines: Vec<&dyn FaultSimulator> =
        vec![&serial, &ppsfp, &deductive, &parallel, &incremental];
    engines
        .into_iter()
        .map(|engine| (engine.name(), engine.run(universe, patterns)))
        .collect()
}

fn assert_engines_agree(circuit: &Circuit, universe: &FaultUniverse, patterns: &PatternSet) {
    for fault_dropping in [true, false] {
        let results = run_all_engines(circuit, universe, patterns, fault_dropping);
        let (reference_name, reference) = &results[0];
        for (name, list) in &results[1..] {
            assert_eq!(
                reference.detected_count(),
                list.detected_count(),
                "{name} vs {reference_name} (dropping={fault_dropping}): detected counts differ"
            );
            for index in 0..universe.len() {
                assert_eq!(
                    reference.state(index).first_pattern(),
                    list.state(index).first_pattern(),
                    "{name} vs {reference_name} (dropping={fault_dropping}): fault {}",
                    universe.get(index).expect("valid").describe(circuit)
                );
            }
        }
    }
}

#[test]
fn all_engines_agree_on_c17_exhaustive() {
    let circuit = library::c17();
    let universe = FaultUniverse::full(&circuit);
    let patterns: PatternSet = (0..32).map(|v| Pattern::from_integer(v, 5)).collect();
    assert_engines_agree(&circuit, &universe, &patterns);
}

#[test]
fn all_engines_agree_on_a_generated_circuit() {
    let circuit = generated_circuit();
    let universe = FaultUniverse::full(&circuit);
    // More than 64 patterns so the packed engines cross block boundaries.
    let patterns = random_patterns(13, 150, 7);
    assert_engines_agree(&circuit, &universe, &patterns);
}

#[test]
fn all_engines_agree_on_the_collapsed_universe() {
    // The checkpoint (collapsed) universe exercises input-pin faults heavily.
    let circuit = generated_circuit();
    let universe = FaultUniverse::checkpoint(&circuit);
    let patterns = random_patterns(13, 96, 21);
    assert_engines_agree(&circuit, &universe, &patterns);
}

/// Best-of-three wall-clock time of one simulator run.  The minimum (rather
/// than the median) is used so transient scheduler contention on loaded CI
/// runners cannot inflate either side of the comparison: the true cost of an
/// engine is its least-disturbed run.
fn timed<F: FnMut() -> FaultList>(mut run: F) -> Duration {
    (0..3)
        .map(|_| {
            let start = Instant::now();
            let list = run();
            let elapsed = start.elapsed();
            assert!(!list.is_empty());
            elapsed
        })
        .min()
        .expect("three timed runs")
}

#[test]
fn parallel_engine_beats_serial_wall_clock() {
    // The performance contract behind making ParallelSimulator the default
    // engine: 64-way packed words plus fault-sharded threads must beat the
    // scalar one-pattern-at-a-time reference even on a single core.
    let circuit = generated_circuit();
    let universe = FaultUniverse::full(&circuit);
    let patterns = random_patterns(13, 192, 99);

    let serial_sim = SerialSimulator::new(&circuit);
    let parallel_sim = ParallelSimulator::new(&circuit);
    let serial_time = timed(|| serial_sim.run(&universe, &patterns));
    let parallel_time = timed(|| parallel_sim.run(&universe, &patterns));

    assert!(
        parallel_time < serial_time,
        "parallel engine ({parallel_time:?}) should beat serial ({serial_time:?})"
    );
}
