//! Golden-number tests for MISR aliasing.
//!
//! A single-session self-test of 192 STUMPS patterns over the alu4 library
//! circuit, seeded with the reproduction's 1981, is fully deterministic;
//! these tests pin its exact aliasing outcome at signature widths 4, 8 and
//! 16 and compare the empirical per-detected-fault aliasing probability with
//! the classical `2^−k` estimate.  Any change to the LFSR polynomials, the
//! phase shifter, the MISR fold or the dictionary build shows up here as a
//! changed golden number.

use lsi_quality::bist::aliasing::AliasingReport;
use lsi_quality::bist::signature::SignatureDictionary;
use lsi_quality::bist::stumps::{StumpsConfig, StumpsGenerator};
use lsi_quality::exec::ExecutionContext;
use lsi_quality::fault::dictionary::FaultDictionary;
use lsi_quality::fault::ppsfp::PpsfpSimulator;
use lsi_quality::fault::simulator::FaultSimulator;
use lsi_quality::fault::universe::FaultUniverse;
use lsi_quality::netlist::library;
use lsi_quality::sim::pattern::PatternSet;

/// The shared programme: 192 scan loads on alu4 from the reference STUMPS
/// geometry.
fn fixture() -> (
    lsi_quality::netlist::circuit::Circuit,
    FaultUniverse,
    PatternSet,
) {
    let circuit = library::alu4();
    let universe = FaultUniverse::full(&circuit);
    let patterns = StumpsGenerator::new(&StumpsConfig {
        width: circuit.primary_inputs().len(),
        channels: 4,
        degree: 64,
        seed: 1981,
    })
    .generate(192);
    (circuit, universe, patterns)
}

#[test]
fn empirical_aliasing_tracks_the_two_to_minus_k_estimate() {
    let (circuit, universe, patterns) = fixture();
    let context = ExecutionContext::new(2);
    // One session spanning the whole test: every detected fault gets exactly
    // one readout, so the per-fault aliasing probability is directly
    // comparable to the per-readout 2^-k estimate.
    let dictionaries = SignatureDictionary::build_many_in(
        &context,
        &circuit,
        &universe,
        &patterns,
        patterns.len(),
        &[4, 8, 16],
    );

    // Golden numbers (pinned): 476 faults, 466 detected by the pattern set.
    assert_eq!(universe.len(), 476);
    let golden_aliased = [(4u32, 50usize), (8, 0), (16, 0)];
    for (dictionary, (width, aliased)) in dictionaries.iter().zip(golden_aliased) {
        let report = AliasingReport::from_dictionary(dictionary);
        assert_eq!(dictionary.signature_width(), width);
        assert_eq!(report.raw_detected, 466, "k = {width}");
        assert_eq!(report.aliased, aliased, "k = {width}");
        assert_eq!(
            report.signature_detected,
            report.raw_detected - aliased,
            "k = {width}"
        );
        assert!(report.effective_coverage() <= report.raw_coverage());
    }

    // The k = 4 empirical probability must be the right order of magnitude:
    // within a factor of 4 of 2^-4 (50/466 ≈ 0.107 vs 0.0625).
    let narrow = AliasingReport::from_dictionary(&dictionaries[0]);
    let ratio = narrow.aliasing_fraction() / narrow.estimated_aliasing_fraction();
    assert!(
        (0.25..4.0).contains(&ratio),
        "k = 4 empirical/estimate ratio {ratio}"
    );
    // Wider registers alias (weakly) less; at 466 detected faults the
    // expected counts at k = 8 and 16 are ~1.8 and ~0.007.
    let counts: Vec<usize> = dictionaries
        .iter()
        .map(|d| AliasingReport::from_dictionary(d).aliased)
        .collect();
    assert!(counts[1] <= counts[0]);
    assert!(counts[2] <= 1, "k = 16 aliased {} faults", counts[2]);
}

#[test]
fn aliasing_goldens_hold_at_every_lane_width() {
    use lsi_quality::exec::LaneWidth;
    use lsi_quality::sim::cache::GoodMachineCache;

    // The same single-session programme as the golden test above, built at
    // every explicit lane width through the cached sweep path.  Lane width
    // is a throughput knob: the aliased counts must match the pinned
    // goldens exactly, and the coverage fractions to 1e-9.
    let (circuit, universe, patterns) = fixture();
    let context = ExecutionContext::new(2);
    let golden_aliased = [(4u32, 50usize), (8, 0), (16, 0)];
    let cache = GoodMachineCache::new();
    for lanes in LaneWidth::EXPLICIT {
        let dictionaries = SignatureDictionary::build_sweep_cached(
            &context,
            &circuit,
            &universe,
            &patterns,
            patterns.len(),
            &[4, 8, 16],
            &[patterns.len()],
            lanes,
            Some(&cache),
        )
        .pop()
        .expect("one length row");
        for (dictionary, (width, aliased)) in dictionaries.iter().zip(golden_aliased) {
            let report = AliasingReport::from_dictionary(dictionary);
            assert_eq!(dictionary.signature_width(), width, "lanes = {lanes}");
            assert_eq!(report.raw_detected, 466, "lanes = {lanes}, k = {width}");
            assert_eq!(report.aliased, aliased, "lanes = {lanes}, k = {width}");
            assert!(
                (report.raw_coverage() - 466.0 / 476.0).abs() < 1e-9,
                "lanes = {lanes}, k = {width}: raw coverage {}",
                report.raw_coverage()
            );
            assert!(
                (report.effective_coverage() - (466 - aliased) as f64 / 476.0).abs() < 1e-9,
                "lanes = {lanes}, k = {width}: effective coverage {}",
                report.effective_coverage()
            );
        }
    }
    // Three lane widths over one shared cache: the first build fills it,
    // the later ones still miss (a different lane width keys differently)
    // but the per-width replays within each build hit.
    assert!(cache.misses() > 0, "cache never filled");
}

#[test]
fn signature_sessions_never_precede_response_differences() {
    // A signature can flag a fault no earlier than its first response
    // difference: the per-fault first failing session is bounded below by
    // the fault dictionary's quantised first failing pattern, with equality
    // whenever no in-session aliasing delays the readout.
    let (circuit, universe, patterns) = fixture();
    let context = ExecutionContext::new(2);
    let session_len = 16;
    let signatures = SignatureDictionary::build_many_in(
        &context,
        &circuit,
        &universe,
        &patterns,
        session_len,
        &[16],
    )
    .pop()
    .expect("one width");
    let list = PpsfpSimulator::new(&circuit).run(&universe, &patterns);
    let responses = FaultDictionary::from_fault_list(&list);

    let mut equal = 0usize;
    let mut delayed = 0usize;
    let mut masked = 0usize;
    for index in 0..universe.len() {
        let ideal = responses.first_failing_session(index, session_len);
        let actual = signatures.first_failing_session(index);
        match (ideal, actual) {
            (Some(a), Some(b)) if a == b => equal += 1,
            (Some(a), Some(b)) => {
                assert!(
                    b > a,
                    "fault {index}: signature fails before responses differ"
                );
                delayed += 1;
            }
            (Some(_), None) => masked += 1,
            (None, None) => {}
            (None, Some(session)) => {
                panic!(
                    "fault {index}: signature failed at session {session} with identical responses"
                )
            }
        }
        assert_eq!(signatures.is_raw_detected(index), ideal.is_some());
    }
    // Golden: of the 466 detected faults, 465 fail at the ideal session,
    // one is delayed by in-session aliasing, none are fully masked at
    // k = 16 over 12 sessions.
    assert_eq!((equal, delayed, masked), (465, 1, 0));
}
