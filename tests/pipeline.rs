//! Integration test: the full pipeline — circuit, fault universe, pattern
//! suite, simulated lot, wafer test, experiment table, `n0` estimation and
//! field-reject prediction — hangs together and recovers known ground truth.

use lsi_quality::fault::coverage::CoverageCurve;
use lsi_quality::fault::simulator::FaultSimulator;
use lsi_quality::fault::universe::FaultUniverse;
use lsi_quality::manufacturing::experiment::RejectExperiment;
use lsi_quality::manufacturing::field::FieldOutcome;
use lsi_quality::manufacturing::lot::{ChipLot, ModelLotConfig};
use lsi_quality::manufacturing::tester::WaferTester;
use lsi_quality::netlist::library;
use lsi_quality::quality::chip_test::ChipTestTable;
use lsi_quality::quality::estimate::N0Estimator;
use lsi_quality::quality::params::{FaultCoverage, ModelParams, Yield};
use lsi_quality::quality::reject::field_reject_rate;
use lsi_quality::tpg::suite::TestSuiteBuilder;

struct PipelineOutcome {
    observed_yield: f64,
    observed_n0: f64,
    estimated_n0: f64,
    measured_reject: f64,
    predicted_reject: f64,
}

/// Runs the whole pipeline for a lot drawn from the statistical model with
/// known parameters, applying only the first `patterns_applied` patterns of
/// the suite (so the tests are deliberately incomplete, as in the paper).
fn run_pipeline(
    true_yield: f64,
    true_n0: f64,
    patterns_applied: usize,
    seed: u64,
) -> PipelineOutcome {
    let circuit = library::alu4();
    let universe = FaultUniverse::full(&circuit);
    let suite = TestSuiteBuilder {
        seed: 17,
        target_coverage: 0.995,
        max_random_patterns: 1024,
        ..TestSuiteBuilder::default()
    }
    .build(&circuit, &universe);

    // Truncate the suite to the requested prefix.
    let truncated: lsi_quality::sim::pattern::PatternSet = suite
        .patterns
        .iter()
        .take(patterns_applied)
        .cloned()
        .collect();
    let list = lsi_quality::fault::ppsfp::PpsfpSimulator::new(&circuit).run(&universe, &truncated);
    let dictionary = lsi_quality::fault::dictionary::FaultDictionary::from_fault_list(&list);
    let coverage_curve = CoverageCurve::from_fault_list(&list, truncated.len());

    let lot = ChipLot::from_model(&ModelLotConfig {
        chips: 4_000,
        yield_fraction: true_yield,
        n0: true_n0,
        fault_universe_size: universe.len(),
        seed,
    });
    let records = WaferTester::new(&dictionary).test_lot(&lot);
    let outcome = FieldOutcome::from_records(&records);

    let checkpoints: Vec<usize> = (1..=truncated.len()).collect();
    let experiment = RejectExperiment::tabulate(&records, &coverage_curve, &checkpoints);
    let table =
        ChipTestTable::from_fractions(&experiment.coverage_vs_fraction(), experiment.total_chips())
            .expect("experiment table is valid");
    let estimate = N0Estimator::default()
        .estimate(&table, Yield::new(lot.observed_yield()).expect("valid"))
        .expect("estimation succeeds");

    let params = ModelParams::new(
        Yield::new(lot.observed_yield()).expect("valid"),
        estimate.curve_fit_n0.max(1.0),
    )
    .expect("valid");
    let predicted = field_reject_rate(
        &params,
        FaultCoverage::new(coverage_curve.final_coverage()).expect("valid"),
    );

    PipelineOutcome {
        observed_yield: lot.observed_yield(),
        observed_n0: lot.observed_n0(),
        estimated_n0: estimate.curve_fit_n0,
        measured_reject: outcome.field_reject_rate(),
        predicted_reject: predicted.value(),
    }
}

#[test]
fn pipeline_recovers_ground_truth_n0() {
    let outcome = run_pipeline(0.25, 6.0, 96, 5);
    assert!((outcome.observed_yield - 0.25).abs() < 0.03);
    assert!((outcome.observed_n0 - 6.0).abs() < 0.3);
    assert!(
        (outcome.estimated_n0 - 6.0).abs() < 1.5,
        "estimated n0 = {}",
        outcome.estimated_n0
    );
}

#[test]
fn pipeline_prediction_matches_measured_field_reject() {
    // With incomplete tests, some defective chips escape; the model's
    // predicted reject rate must track the measured one.
    let outcome = run_pipeline(0.3, 4.0, 48, 11);
    assert!(outcome.measured_reject > 0.0, "expected some escapes");
    let absolute_error = (outcome.predicted_reject - outcome.measured_reject).abs();
    assert!(
        absolute_error < 0.03,
        "predicted {:.4} vs measured {:.4}",
        outcome.predicted_reject,
        outcome.measured_reject
    );
    // And both must be far below the no-test reject rate of 1 - y.
    assert!(outcome.measured_reject < 0.7 * (1.0 - outcome.observed_yield));
}

#[test]
fn more_patterns_mean_fewer_escapes() {
    let short = run_pipeline(0.3, 5.0, 16, 23);
    let long = run_pipeline(0.3, 5.0, 256, 23);
    assert!(
        long.measured_reject <= short.measured_reject,
        "short {:.4} vs long {:.4}",
        short.measured_reject,
        long.measured_reject
    );
}
