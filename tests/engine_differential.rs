//! Seeded differential property test across every fault-simulation engine.
//!
//! Each case draws a random netlist (`netlist::generator::random`) and a
//! pattern set from one of two differently structured sources (uniform
//! random or LFSR), then requires the serial, PPSFP, deductive, parallel and
//! incremental engines to report *byte-identical* detection results — the
//! full [`FaultList`], i.e. the first detecting pattern of every fault —
//! with and without fault dropping, on full, equivalence-collapsed and
//! checkpoint fault universes, and for the deductive and incremental engines
//! additionally with their internal collapsing disabled.
//!
//! The case count is 100 in release builds (the CI release-test and
//! bench-smoke jobs); debug builds run a reduced sweep so plain `cargo test`
//! stays fast.

use lsi_quality::exec::ExecutionContext;
use lsi_quality::fault::collapse::collapse_equivalence;
use lsi_quality::fault::deductive::DeductiveSimulator;
use lsi_quality::fault::incremental::IncrementalSimulator;
use lsi_quality::fault::list::FaultList;
use lsi_quality::fault::model::{Fault, StuckValue};
use lsi_quality::fault::parallel::ParallelSimulator;
use lsi_quality::fault::simulator::{BuildEngine, EngineKind, FaultSimulator};
use lsi_quality::fault::universe::FaultUniverse;
use lsi_quality::netlist::circuit::Circuit;
use lsi_quality::netlist::generator::{
    binary_counter, pipelined_datapath, random_circuit, sequence_detector, RandomCircuitConfig,
};
use lsi_quality::netlist::scan::insert_scan;
use lsi_quality::sim::pattern::{Pattern, PatternSet};
use lsi_quality::stats::rng::{Rng, SplitMix64, Xoshiro256StarStar};
use lsi_quality::tpg::lfsr::Lfsr;

#[cfg(debug_assertions)]
const CASES: u64 = 12;
#[cfg(not(debug_assertions))]
const CASES: u64 = 100;

fn cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// One generated scenario: a circuit, a fault universe and a pattern set.
struct Case {
    label: String,
    circuit: Circuit,
    patterns: PatternSet,
}

/// Deterministically derives case `index` from the suite seed.
fn build_case(index: u64) -> Case {
    let mut rng = SplitMix64::seed_from_u64(0x0198_1DAC ^ index);
    let inputs = 5 + (rng.next_u64() % 8) as usize; // 5..=12
    let gates = 20 + (rng.next_u64() % 100) as usize; // 20..=119
    let max_fanin = 2 + (rng.next_u64() % 3) as usize; // 2..=4
    let locality = 4 + (rng.next_u64() % 40) as usize;
    let circuit = random_circuit(&RandomCircuitConfig {
        inputs,
        gates,
        max_fanin,
        locality,
        seed: rng.next_u64(),
    });
    let pattern_count = 16 + (rng.next_u64() % 49) as usize; // 16..=64
    let (source, patterns) = if index % 2 == 0 {
        let mut pattern_rng = Xoshiro256StarStar::seed_from_u64(rng.next_u64());
        let patterns = (0..pattern_count)
            .map(|_| Pattern::from_bits((0..inputs).map(|_| pattern_rng.next_bool(0.5))))
            .collect();
        ("random", patterns)
    } else {
        (
            "lfsr",
            Lfsr::new(inputs, rng.next_u64()).generate(pattern_count),
        )
    };
    Case {
        label: format!(
            "case {index}: {inputs} inputs, {gates} gates, {pattern_count} {source} patterns"
        ),
        circuit,
        patterns,
    }
}

/// The fault universes every case is replayed against: the paper's full
/// (uncollapsed) universe, the equivalence-collapsed universe, and the
/// classical checkpoint set (which is input-pin-fault heavy).
fn universes(circuit: &Circuit) -> Vec<(&'static str, FaultUniverse)> {
    vec![
        ("full", FaultUniverse::full(circuit)),
        ("collapsed", collapse_equivalence(circuit).collapsed),
        ("checkpoint", FaultUniverse::checkpoint(circuit)),
    ]
}

/// Runs every engine over one (universe, patterns) input and demands
/// byte-identical `FaultList`s.
fn assert_engines_identical(case: &Case, universe_name: &str, universe: &FaultUniverse) {
    for fault_dropping in [true, false] {
        let mut reference: Option<(String, FaultList)> = None;
        let mut check = |name: String, list: FaultList| match &reference {
            None => reference = Some((name, list)),
            Some((reference_name, reference_list)) => {
                assert_eq!(
                    reference_list, &list,
                    "{}, {universe_name} universe, dropping={fault_dropping}: \
                     {name} disagrees with {reference_name}",
                    case.label
                );
            }
        };
        for kind in EngineKind::ALL {
            let engine = kind.build_with_fault_dropping(&case.circuit, fault_dropping);
            check(
                kind.name().to_string(),
                engine.run(universe, &case.patterns),
            );
        }
        let uncollapsed = DeductiveSimulator::new(&case.circuit)
            .with_fault_dropping(fault_dropping)
            .with_collapsing(false);
        check(
            "deductive(uncollapsed)".to_string(),
            uncollapsed.run(universe, &case.patterns),
        );
        let incremental_uncollapsed = IncrementalSimulator::new(&case.circuit)
            .with_fault_dropping(fault_dropping)
            .with_collapsing(false);
        check(
            "incremental(uncollapsed)".to_string(),
            incremental_uncollapsed.run(universe, &case.patterns),
        );
    }
}

#[test]
fn engines_agree_on_seeded_random_cases() {
    let mut nonempty_detections = 0usize;
    for index in 0..CASES {
        let case = build_case(index);
        for (universe_name, universe) in universes(&case.circuit) {
            assert_engines_identical(&case, universe_name, &universe);
            // Keep a pulse on test strength: the sweep must actually detect
            // faults, not vacuously compare empty lists.
            let detected = EngineKind::Deductive
                .build(&case.circuit)
                .run(&universe, &case.patterns)
                .detected_count();
            if detected > 0 {
                nonempty_detections += 1;
            }
        }
    }
    assert!(
        nonempty_detections as u64 >= 3 * CASES - CASES / 2,
        "suspiciously many empty detection sets: {nonempty_detections}"
    );
}

#[test]
fn engines_agree_on_scan_expanded_sequential_devices() {
    // Time-frame-expanded scan devices: scan insertion turns a sequential
    // circuit into its capture-mode *test view*, where one pattern is one
    // full scan-in/capture/scan-out cycle — a combinational circuit every
    // engine can simulate unchanged.  All five engines (plus the
    // uncollapsed deductive/incremental variants) must stay byte-identical
    // on the expanded universes, including a dedicated scan-path universe
    // of stuck-at faults on the shift/capture multiplexer gates, and the
    // parallel engine must stay invariant at 1, 2 and 2×cores workers.
    let contexts: Vec<ExecutionContext> = [1, 2, 2 * cores()].map(ExecutionContext::new).into();
    let devices: Vec<(&str, Circuit, usize)> = vec![
        ("counter8", binary_counter(8), 1),
        ("detector", sequence_detector(&[true, false, true, true]), 2),
        ("datapath8", pipelined_datapath(8), 3),
    ];
    for (name, sequential, chains) in devices {
        let scan = insert_scan(&sequential, chains).expect("chains fit the state elements");
        let case = Case {
            label: format!("scan {name} ({chains} chains)"),
            circuit: scan.test_view().clone(),
            patterns: Lfsr::new(
                scan.test_view().primary_inputs().len(),
                0x5C4A ^ chains as u64,
            )
            .generate(48),
        };
        for (universe_name, universe) in universes(&case.circuit) {
            assert_engines_identical(&case, universe_name, &universe);
        }
        // The scan path as its own fault-universe axis: every shift/capture
        // gate the insertion added, stuck both ways.
        let scan_path = FaultUniverse::from_faults(
            scan.scan_path_gates()
                .iter()
                .flat_map(|&gate| {
                    StuckValue::BOTH
                        .into_iter()
                        .map(move |stuck| Fault::output(gate, stuck))
                })
                .collect(),
        );
        assert!(!scan_path.is_empty());
        assert_engines_identical(&case, "scan-path", &scan_path);
        let reference = EngineKind::Serial
            .build(&case.circuit)
            .run(&scan_path, &case.patterns);
        assert!(
            reference.detected_count() > 0,
            "{}: no scan-path fault detected",
            case.label
        );
        for context in &contexts {
            let pooled = EngineKind::Parallel
                .build_in(context, &case.circuit)
                .run(&scan_path, &case.patterns);
            assert_eq!(
                reference,
                pooled,
                "{}, {} workers",
                case.label,
                context.workers()
            );
        }
    }
}

#[test]
fn parallel_engine_on_explicit_contexts_matches_the_reference() {
    // The Session-era API: the parallel engine bound to a persistent
    // ExecutionContext pool must stay byte-identical to the serial
    // reference at 1, 2 and 2×cores workers — the pool is reused across
    // every case, exactly like a session reuses it across sweep points.
    let contexts: Vec<ExecutionContext> = [1, 2, 2 * cores()].map(ExecutionContext::new).into();
    let case_count = CASES.min(12);
    for index in 0..case_count {
        let case = build_case(index);
        let universe = FaultUniverse::full(&case.circuit);
        let reference = EngineKind::Serial
            .build(&case.circuit)
            .run(&universe, &case.patterns);
        for context in &contexts {
            let pooled = ParallelSimulator::new(&case.circuit)
                .with_context(context)
                .run(&universe, &case.patterns);
            assert_eq!(
                reference,
                pooled,
                "{}, {} workers",
                case.label,
                context.workers()
            );
            let built = EngineKind::Parallel
                .build_in(context, &case.circuit)
                .run(&universe, &case.patterns);
            assert_eq!(
                reference,
                built,
                "build_in: {}, {} workers",
                case.label,
                context.workers()
            );
        }
    }
}

#[test]
fn incremental_engine_matches_deductive_everywhere() {
    // The incremental engine's dedicated differential block: byte-identical
    // to the deductive oracle on the full, equivalence-collapsed and
    // checkpoint universes, with and without fault dropping, with and
    // without its internal collapsing, and sharded across explicit worker
    // pools.  Deductive is the oracle because its algorithm shares nothing
    // with event-driven cone propagation — agreement is two independent
    // derivations of the same answer.
    let contexts: Vec<ExecutionContext> = [1, 3].map(ExecutionContext::new).into();
    let case_count = CASES.min(16);
    for index in 0..case_count {
        let case = build_case(index);
        for (universe_name, universe) in universes(&case.circuit) {
            for fault_dropping in [true, false] {
                let oracle = DeductiveSimulator::new(&case.circuit)
                    .with_fault_dropping(fault_dropping)
                    .run(&universe, &case.patterns);
                for collapse in [true, false] {
                    let list = IncrementalSimulator::new(&case.circuit)
                        .with_fault_dropping(fault_dropping)
                        .with_collapsing(collapse)
                        .run(&universe, &case.patterns);
                    assert_eq!(
                        oracle, list,
                        "{}, {universe_name} universe, dropping={fault_dropping}, \
                         collapse={collapse}",
                        case.label
                    );
                }
                for context in &contexts {
                    let pooled = IncrementalSimulator::new(&case.circuit)
                        .with_fault_dropping(fault_dropping)
                        .with_context(context)
                        .run(&universe, &case.patterns);
                    assert_eq!(
                        oracle,
                        pooled,
                        "{}, {universe_name} universe, dropping={fault_dropping}, \
                         {} workers",
                        case.label,
                        context.workers()
                    );
                }
            }
        }
    }
}

#[test]
fn lane_widths_and_the_cache_are_invisible_at_every_worker_count() {
    // The tentpole invariant of the packed-lane layer: every chunked engine
    // (PPSFP, parallel, incremental) must report byte-identical FaultLists
    // at lanes 1, 4 and 8, at 1, 2 and 2×cores workers, with a shared
    // GoodMachineCache bound — all compared against the serial engine,
    // which knows nothing about lanes or caches.  The cache is shared
    // across the whole matrix, so later runs replay good-machine chunks
    // deposited by earlier ones and must still agree.
    use lsi_quality::exec::LaneWidth;
    use lsi_quality::fault::simulator::EngineOptions;
    use lsi_quality::sim::cache::GoodMachineCache;

    let contexts: Vec<ExecutionContext> = [1, 2, 2 * cores()].map(ExecutionContext::new).into();
    let case_count = CASES.min(8);
    for index in 0..case_count {
        let case = build_case(index);
        let universe = FaultUniverse::full(&case.circuit);
        let reference = EngineKind::Serial
            .build(&case.circuit)
            .run(&universe, &case.patterns);
        let cache = GoodMachineCache::new();
        for engine in [
            EngineKind::Ppsfp,
            EngineKind::Parallel,
            EngineKind::Incremental,
        ] {
            for lanes in LaneWidth::EXPLICIT {
                for context in &contexts {
                    let list = engine
                        .build_configured(
                            &case.circuit,
                            &EngineOptions {
                                context: Some(context),
                                lanes,
                                cache: Some(&cache),
                                ..EngineOptions::default()
                            },
                        )
                        .run(&universe, &case.patterns);
                    assert_eq!(
                        reference,
                        list,
                        "{}, {engine}, lanes={lanes}, {} workers",
                        case.label,
                        context.workers()
                    );
                }
            }
        }
        assert!(
            cache.misses() > 0 && cache.hits() > 0,
            "{}: the matrix must both populate and replay the cache \
             (misses={}, hits={})",
            case.label,
            cache.misses(),
            cache.hits()
        );
    }
}

#[test]
fn coverage_curve_default_impl_is_engine_invariant() {
    // FaultSimulator::coverage_curve is a default trait method (run + fold);
    // every engine must produce the identical curve, including the parallel
    // engine on explicit pools.
    let case = build_case(3);
    let universe = FaultUniverse::full(&case.circuit);
    let reference = EngineKind::Serial
        .build(&case.circuit)
        .coverage_curve(&universe, &case.patterns);
    assert_eq!(reference.pattern_count(), case.patterns.len());
    assert!(reference.final_coverage() > 0.0, "vacuous case");
    for kind in EngineKind::ALL {
        let curve = kind
            .build(&case.circuit)
            .coverage_curve(&universe, &case.patterns);
        assert_eq!(reference, curve, "{kind}");
    }
    let context = ExecutionContext::new(2);
    let pooled = EngineKind::Parallel
        .build_in(&context, &case.circuit)
        .coverage_curve(&universe, &case.patterns);
    assert_eq!(reference, pooled, "pooled parallel engine");
}

#[test]
fn engines_agree_on_degenerate_inputs() {
    // Zero patterns and an empty universe are valid inputs to every engine.
    let case = build_case(0);
    let universe = FaultUniverse::full(&case.circuit);
    for kind in EngineKind::ALL {
        let engine = kind.build(&case.circuit);
        let no_patterns = engine.run(&universe, &PatternSet::new());
        assert_eq!(no_patterns.detected_count(), 0, "{}", kind.name());
        let no_faults = engine.run(&FaultUniverse::from_faults(Vec::new()), &case.patterns);
        assert!(no_faults.is_empty(), "{}", kind.name());
    }
}
