//! Seeded stress test for the persistent `ExecutionContext` worker pool.
//!
//! The pool underpins every parallel stage of the reproduction, so this
//! suite pins the property everything else relies on: scheduling is
//! invisible.  A seeded workload of sequential fork-join scopes — each
//! spawning jobs that themselves open *nested* scopes on the same pool —
//! must produce bit-identical results at 1, 2 and 2×cores workers, and must
//! match a straight serial evaluation of the same arithmetic.

use lsi_quality::exec::ExecutionContext;
use lsi_quality::stats::rng::{Rng, SplitMix64};

/// Deterministic per-job arithmetic (a SplitMix-style mix), heavy enough to
/// keep many jobs in flight at once.
fn mix(seed: u64, rounds: u64) -> u64 {
    let mut acc = seed;
    for round in 0..rounds {
        acc = acc
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_mul(round | 1);
        acc ^= acc >> 27;
    }
    acc
}

/// One seeded campaign: `scopes` sequential fork-join rounds on a single
/// pool; every job of a round forks again into a nested scope.  Returns one
/// checksum per round.
fn run_campaign(context: &ExecutionContext, seed: u64, scopes: usize) -> Vec<u64> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut checksums = Vec::with_capacity(scopes);
    for _ in 0..scopes {
        let jobs = 1 + (rng.next_u64() % 24) as usize;
        let job_seeds: Vec<u64> = (0..jobs).map(|_| rng.next_u64()).collect();
        let mut slots = vec![0u64; jobs];
        context.scope(|scope| {
            for (slot, &job_seed) in slots.iter_mut().zip(&job_seeds) {
                scope.spawn(move || {
                    // Nested fork-join on the same pool: split the job into
                    // four sub-streams and recombine.
                    let mut parts = [0u64; 4];
                    context.scope(|inner| {
                        for (index, part) in parts.iter_mut().enumerate() {
                            inner.spawn(move || {
                                *part = mix(job_seed ^ index as u64, 200 + index as u64)
                            });
                        }
                    });
                    *slot = parts.iter().fold(job_seed, |acc, &part| acc ^ part);
                });
            }
        });
        checksums.push(
            slots
                .iter()
                .fold(0u64, |acc, &value| acc.rotate_left(7) ^ value),
        );
    }
    checksums
}

/// The same campaign evaluated serially, with no pool at all — the ground
/// truth the pooled runs must reproduce bit for bit.
fn run_campaign_serially(seed: u64, scopes: usize) -> Vec<u64> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut checksums = Vec::with_capacity(scopes);
    for _ in 0..scopes {
        let jobs = 1 + (rng.next_u64() % 24) as usize;
        let mut slots = Vec::with_capacity(jobs);
        for _ in 0..jobs {
            let job_seed = rng.next_u64();
            let mut value = job_seed;
            for index in 0..4u64 {
                value ^= mix(job_seed ^ index, 200 + index);
            }
            slots.push(value);
        }
        checksums.push(
            slots
                .iter()
                .fold(0u64, |acc, &value| acc.rotate_left(7) ^ value),
        );
    }
    checksums
}

#[test]
fn nested_and_sequential_scopes_are_deterministic_at_every_worker_count() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for seed in [0x1981u64, 0xDAC, 7] {
        let expected = run_campaign_serially(seed, 12);
        for workers in [1, 2, 2 * cores] {
            let context = ExecutionContext::new(workers);
            assert_eq!(
                expected,
                run_campaign(&context, seed, 12),
                "seed {seed:#x}, {workers} workers"
            );
        }
    }
}

#[test]
fn one_pool_survives_many_sequential_campaigns() {
    // A session-lifetime pool: the same context serves campaign after
    // campaign (as a Session serves suite building, lot generation, testing
    // and sweeping) without drift or exhaustion.
    let context = ExecutionContext::new(3);
    for seed in 0..6u64 {
        assert_eq!(
            run_campaign_serially(seed, 4),
            run_campaign(&context, seed, 4),
            "campaign seed {seed}"
        );
    }
    assert_eq!(context.workers(), 3);
}
