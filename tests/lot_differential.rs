//! Seeded differential property test for the parallel production-line
//! pipeline, in the style of `tests/engine_differential.rs`.
//!
//! Each case draws a random lot configuration (chip count, yield, `n0`,
//! fault-universe size, seed — and for physical lots a clustered defect
//! model) plus a thread count, then requires the `ParallelLotRunner` to
//! produce *byte-identical* results to the serial path at every stage:
//! the generated `ChipLot`, the wafer-test records, the `FieldOutcome`,
//! and the full-resolution `RejectExperiment`.  A final block pins whole
//! `LotSweep` grids to their serial fan-out.
//!
//! The case count is 60 in release builds; debug builds run a reduced sweep
//! so plain `cargo test` stays fast.
//!
//! A second block replays the pipeline through the Session-era typed API —
//! runners and sweeps bound to persistent `ExecutionContext` pools at 1, 2
//! and 2×cores workers, and (in release builds) whole
//! `Session::run_production_line` passes — and demands the same
//! byte-identity.

use lsi_quality::exec::{ExecutionContext, RunConfig};
use lsi_quality::fault::coverage::CoverageCurve;
use lsi_quality::fault::dictionary::FaultDictionary;
use lsi_quality::fault::ppsfp::PpsfpSimulator;
use lsi_quality::fault::simulator::FaultSimulator;
use lsi_quality::fault::universe::FaultUniverse;
use lsi_quality::manufacturing::defect::DefectModel;
use lsi_quality::manufacturing::experiment::RejectExperiment;
use lsi_quality::manufacturing::field::FieldOutcome;
use lsi_quality::manufacturing::lot::{ChipLot, ModelLotConfig, PhysicalLotConfig};
use lsi_quality::manufacturing::pipeline::{LotSweep, ParallelLotRunner};
use lsi_quality::manufacturing::tester::WaferTester;
use lsi_quality::netlist::library;
use lsi_quality::sim::pattern::{Pattern, PatternSet};
use lsi_quality::stats::rng::{Rng, SplitMix64};
use lsi_quality::{LineSpec, Session};

#[cfg(debug_assertions)]
const CASES: u64 = 16;
#[cfg(not(debug_assertions))]
const CASES: u64 = 60;

/// The shared test programme: an exhaustive-ish pattern set over c17, enough
/// to exercise first-fail bookkeeping without dominating the runtime.
fn fixture() -> (FaultDictionary, CoverageCurve, usize) {
    let circuit = library::c17();
    let universe = FaultUniverse::full(&circuit);
    let patterns: PatternSet = (0..24)
        .map(|v| Pattern::from_integer(v * 3 + 1, 5))
        .collect();
    let list = PpsfpSimulator::new(&circuit).run(&universe, &patterns);
    (
        FaultDictionary::from_fault_list(&list),
        CoverageCurve::from_fault_list(&list, patterns.len()),
        universe.len(),
    )
}

/// Deterministically derives case `index` from the suite seed.
struct Case {
    label: String,
    threads: usize,
    chips: usize,
    seed: u64,
    yield_fraction: f64,
    n0: f64,
    clustering: f64,
    extra_faults_per_defect: f64,
}

fn build_case(index: u64) -> Case {
    let mut rng = SplitMix64::seed_from_u64(0x0198_1707 ^ index);
    let threads = 2 + (rng.next_u64() % 7) as usize; // 2..=8

    // Most lots are big enough to actually shard (the runner folds lots
    // below its 128-item shard minimum back to one thread); every fourth
    // case stays small — down to empty — to keep the edge paths covered.
    let chips = if index % 4 == 0 {
        (rng.next_u64() % 100) as usize // 0..=99, serial fold-back
    } else {
        300 + (rng.next_u64() % 900) as usize // 300..=1199, 2+ shards
    };
    let seed = rng.next_u64();
    let yield_fraction = rng.next_f64(); // anywhere in [0, 1)
    let n0 = 1.0 + rng.next_f64() * 9.0; // 1..10
    let clustering = 0.25 + rng.next_f64() * 2.0;
    let extra_faults_per_defect = rng.next_f64() * 4.0;
    Case {
        label: format!(
            "case {index}: {chips} chips, y = {yield_fraction:.3}, n0 = {n0:.2}, \
             {threads} threads"
        ),
        threads,
        chips,
        seed,
        yield_fraction,
        n0,
        clustering,
        extra_faults_per_defect,
    }
}

#[test]
fn parallel_pipeline_is_byte_identical_to_serial() {
    let (dictionary, coverage, universe_size) = fixture();
    // 300 checkpoints (clamped to the curve past pattern 24) force the
    // experiment tabulation itself over the runner's 128-item shard minimum,
    // so the checkpoint-range slicing really runs multi-threaded here.
    let checkpoints: Vec<usize> = (1..=300).collect();
    for index in 0..CASES {
        let case = build_case(index);
        let runner = ParallelLotRunner::new().with_threads(case.threads);

        // Model lot: generation, test, field outcome, reject table.
        let model_config = ModelLotConfig {
            chips: case.chips,
            yield_fraction: case.yield_fraction,
            n0: case.n0,
            fault_universe_size: universe_size,
            seed: case.seed,
        };
        let serial_lot = ChipLot::from_model(&model_config);
        let parallel_lot = runner.generate_model_lot(&model_config);
        assert_eq!(serial_lot, parallel_lot, "model lot: {}", case.label);

        let serial_records = WaferTester::new(&dictionary).test_lot(&serial_lot);
        let parallel_records = runner.test_lot(&dictionary, &parallel_lot);
        assert_eq!(serial_records, parallel_records, "records: {}", case.label);
        assert_eq!(
            FieldOutcome::from_records(&serial_records),
            FieldOutcome::from_records(&parallel_records),
            "field outcome: {}",
            case.label
        );

        let serial_experiment =
            RejectExperiment::tabulate(&serial_records, &coverage, &checkpoints);
        let parallel_experiment = runner.experiment(&parallel_records, &coverage, &checkpoints);
        assert_eq!(
            serial_experiment, parallel_experiment,
            "experiment: {}",
            case.label
        );

        // Physical lot: generation through the defect pipeline.
        let target_yield = (0.05 + case.yield_fraction * 0.9).clamp(0.05, 0.95);
        let physical_config = PhysicalLotConfig {
            chips: case.chips,
            defect_model: DefectModel::for_target_yield(target_yield, case.clustering)
                .expect("valid defect model"),
            extra_faults_per_defect: case.extra_faults_per_defect,
            fault_universe_size: universe_size,
            seed: case.seed ^ 0xABCD,
        };
        let serial_physical = ChipLot::from_physical(&physical_config);
        let parallel_physical = runner.generate_physical_lot(&physical_config);
        assert_eq!(
            serial_physical, parallel_physical,
            "physical lot: {}",
            case.label
        );
    }
}

#[test]
fn context_bound_runners_are_byte_identical_to_serial() {
    // The typed path: one persistent pool per worker count (1, 2, 2×cores),
    // reused across every case — as a Session reuses its pool across a whole
    // campaign — with byte-identical results at every stage.
    let (dictionary, coverage, universe_size) = fixture();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let contexts: Vec<ExecutionContext> = [1, 2, 2 * cores].map(ExecutionContext::new).into();
    let checkpoints: Vec<usize> = (1..=300).collect();
    for index in 0..CASES.min(12) {
        let case = build_case(index);
        let model_config = ModelLotConfig {
            chips: case.chips,
            yield_fraction: case.yield_fraction,
            n0: case.n0,
            fault_universe_size: universe_size,
            seed: case.seed,
        };
        let serial_lot = ChipLot::from_model(&model_config);
        let serial_records = WaferTester::new(&dictionary).test_lot(&serial_lot);
        let serial_experiment =
            RejectExperiment::tabulate(&serial_records, &coverage, &checkpoints);
        for context in &contexts {
            let runner = ParallelLotRunner::with_context(context);
            let label = format!("{}, {} workers", case.label, context.workers());
            assert_eq!(
                serial_lot,
                runner.generate_model_lot(&model_config),
                "{label}"
            );
            assert_eq!(
                serial_records,
                runner.test_lot(&dictionary, &serial_lot),
                "{label}"
            );
            assert_eq!(
                serial_experiment,
                runner.experiment(&serial_records, &coverage, &checkpoints),
                "{label}"
            );
        }
    }
}

#[test]
fn session_production_line_is_worker_count_invariant() {
    // A whole Session::run_production_line pass — suite build, lot
    // generation, wafer test, streamed tabulation — at several worker
    // counts.  The full pass is expensive, so debug builds skip it (the
    // release CI jobs run it).
    if cfg!(debug_assertions) {
        eprintln!("skipped in debug builds; run with --release");
        return;
    }
    let spec = LineSpec {
        chips: 150,
        yield_fraction: 0.3,
        n0: 4.0,
        full_size: false,
    };
    let reference = Session::new(RunConfig::default().with_workers(1).with_base_seed(7))
        .run_production_line(&spec)
        .expect("no scan configured");
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for workers in [2, 2 * cores] {
        let session = Session::new(RunConfig::default().with_workers(workers).with_base_seed(7));
        let line = session
            .run_production_line(&spec)
            .expect("no scan configured");
        assert_eq!(
            reference.suite.patterns.as_slice(),
            line.suite.patterns.as_slice(),
            "{workers} workers"
        );
        assert_eq!(reference.suite.fault_list, line.suite.fault_list);
        assert_eq!(reference.coverage, line.coverage, "{workers} workers");
        assert_eq!(reference.experiment, line.experiment, "{workers} workers");
        assert_eq!(reference.observed_yield, line.observed_yield);
        assert_eq!(reference.observed_n0, line.observed_n0);
    }
    // reproduce_table1 pins the paper's lot: 277 chips at the 1981 seed.
    let table1 = Session::new(RunConfig::default().with_workers(2))
        .reproduce_table1()
        .expect("no scan configured");
    assert_eq!(table1.experiment.total_chips(), 277);
}

#[test]
fn lot_generation_is_order_independent() {
    // The per-chip streams make each chip a pure function of (config, id):
    // a prefix of a bigger lot equals the smaller lot, chip for chip — the
    // property the sharding relies on.
    let config = ModelLotConfig {
        chips: 120,
        yield_fraction: 0.2,
        n0: 5.0,
        fault_universe_size: 800,
        seed: 3,
    };
    let small = ChipLot::from_model(&config);
    let big = ChipLot::from_model(&ModelLotConfig {
        chips: 300,
        ..config
    });
    assert_eq!(small.chips(), &big.chips()[..120]);
}

#[test]
fn sweep_fan_out_is_byte_identical_to_serial() {
    let (dictionary, coverage, universe_size) = fixture();
    for suite_seed in 0..4u64 {
        let mut rng = SplitMix64::seed_from_u64(0x5EED ^ suite_seed);
        let yields: Vec<f64> = (0..3).map(|_| 0.05 + rng.next_f64() * 0.6).collect();
        let n0s: Vec<f64> = (0..3).map(|_| 1.0 + rng.next_f64() * 8.0).collect();
        let points = LotSweep::grid(&yields, &n0s);
        let base = LotSweep {
            chips: 80,
            fault_universe_size: universe_size,
            base_seed: rng.next_u64(),
            threads: 1,
            context: None,
        };
        let serial = base.run(&dictionary, &coverage, &points);
        for threads in [2, 4, 16] {
            let fanned = LotSweep { threads, ..base }.run(&dictionary, &coverage, &points);
            assert_eq!(serial, fanned, "sweep seed {suite_seed}, {threads} threads");
        }
        // The same grid fanned over persistent pools (the Session path).
        for workers in [2, 5] {
            let context = ExecutionContext::new(workers);
            let pooled = LotSweep { threads: 0, ..base }.with_context(&context).run(
                &dictionary,
                &coverage,
                &points,
            );
            assert_eq!(serial, pooled, "sweep seed {suite_seed}, {workers} workers");
        }
    }
}
