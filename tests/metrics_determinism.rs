//! The two telemetry invariants of `lsiq-obs` (`docs/OBSERVABILITY.md`):
//!
//! 1. **Sharded-merge determinism** — the engine counter totals
//!    (`engine.runs` / `engine.faults` / `engine.good_evals` /
//!    `engine.drops`) are placed at worker-count-invariant points, so the
//!    merged registry totals are identical whether a run used 1, 2 or
//!    2×cores workers.  (Span *timings* and per-shard span counts
//!    legitimately vary with the ladder and are not pinned.)
//! 2. **Recording never changes results** — every numeric output is
//!    byte-identical with `LSIQ_METRICS=json` and with the default `off`,
//!    across engines, lots and worker counts.
//!
//! The metrics mode and registry are process-global, so every test in this
//! file serializes on one lock and restores `Off` before releasing it.

use lsi_quality::exec::ExecutionContext;
use lsi_quality::fault::deductive::DeductiveSimulator;
use lsi_quality::fault::dictionary::FaultDictionary;
use lsi_quality::fault::incremental::IncrementalSimulator;
use lsi_quality::fault::parallel::ParallelSimulator;
use lsi_quality::fault::ppsfp::PpsfpSimulator;
use lsi_quality::fault::serial::SerialSimulator;
use lsi_quality::fault::simulator::FaultSimulator;
use lsi_quality::fault::universe::FaultUniverse;
use lsi_quality::manufacturing::lot::{ChipLot, ModelLotConfig};
use lsi_quality::manufacturing::pipeline::ParallelLotRunner;
use lsi_quality::netlist::library;
use lsi_quality::obs::{self, MetricsMode, Snapshot};
use lsi_quality::sim::pattern::{Pattern, PatternSet};
use std::sync::Mutex;

/// Serializes every test here on the process-global mode and registry.
static MODE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    MODE_LOCK
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
}

fn patterns(width: usize, count: usize) -> PatternSet {
    (0..count)
        .map(|v| Pattern::from_integer(v as u64 * 7 + 3, width))
        .collect()
}

/// The four worker-invariant engine totals, in catalogue order.
fn engine_totals(snapshot: &Snapshot) -> [u64; 4] {
    [
        snapshot.counter("engine.runs"),
        snapshot.counter("engine.faults"),
        snapshot.counter("engine.good_evals"),
        snapshot.counter("engine.drops"),
    ]
}

#[test]
fn sharded_merge_totals_are_worker_count_invariant() {
    let _guard = lock();
    let circuit = library::alu4();
    let universe = FaultUniverse::full(&circuit);
    let patterns = patterns(circuit.primary_inputs().len(), 48);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    obs::set_mode(MetricsMode::Json);
    let mut reference: Option<[u64; 4]> = None;
    for workers in [1, 2, 2 * cores] {
        let context = ExecutionContext::new(workers);
        obs::reset();
        let parallel = ParallelSimulator::new(&circuit)
            .with_context(&context)
            .run(&universe, &patterns);
        let incremental = IncrementalSimulator::new(&circuit)
            .with_context(&context)
            .run(&universe, &patterns);
        assert_eq!(parallel.detected_count(), incremental.detected_count());
        let totals = engine_totals(&obs::snapshot());
        assert!(
            totals.iter().all(|&t| t > 0),
            "{workers} workers: {totals:?}"
        );
        match reference {
            None => reference = Some(totals),
            Some(expected) => assert_eq!(
                expected, totals,
                "registry totals drifted at {workers} workers"
            ),
        }
    }
    obs::set_mode(MetricsMode::Off);
}

#[test]
fn recording_never_changes_engine_results() {
    let _guard = lock();
    let circuit = library::alu4();
    let universe = FaultUniverse::full(&circuit);
    let patterns = patterns(circuit.primary_inputs().len(), 32);

    // Reference pass with telemetry hard off (registry zeroed so the
    // "nothing was recorded" assertion is not polluted by earlier tests
    // in this process).
    obs::set_mode(MetricsMode::Off);
    obs::reset();
    let off: Vec<_> = run_all_engines(&circuit, &universe, &patterns);
    let silent = obs::snapshot();

    // Identical pass with recording on.
    obs::reset();
    obs::set_mode(MetricsMode::Json);
    let json: Vec<_> = run_all_engines(&circuit, &universe, &patterns);
    let recorded = obs::snapshot();
    obs::set_mode(MetricsMode::Off);

    assert_eq!(off, json, "fault lists must be byte-identical");
    // The off pass recorded nothing; the json pass recorded every engine.
    assert_eq!(engine_totals(&silent), [0; 4]);
    assert_eq!(recorded.counter("engine.runs"), 5);
    assert!(recorded.counter("engine.faults") >= 5 * universe_classes_floor(&universe));
}

fn universe_classes_floor(universe: &FaultUniverse) -> u64 {
    // Collapsing engines count equivalence classes, not raw faults; the
    // class count is a floor for every engine's per-run contribution.
    (universe.len() as u64) / 4
}

fn run_all_engines(
    circuit: &lsi_quality::netlist::circuit::Circuit,
    universe: &FaultUniverse,
    patterns: &PatternSet,
) -> Vec<Vec<Option<usize>>> {
    let runs: [Box<dyn Fn() -> lsi_quality::fault::list::FaultList>; 5] = [
        Box::new(|| SerialSimulator::new(circuit).run(universe, patterns)),
        Box::new(|| PpsfpSimulator::new(circuit).run(universe, patterns)),
        Box::new(|| DeductiveSimulator::new(circuit).run(universe, patterns)),
        Box::new(|| ParallelSimulator::new(circuit).run(universe, patterns)),
        Box::new(|| IncrementalSimulator::new(circuit).run(universe, patterns)),
    ];
    runs.iter()
        .map(|run| {
            let list = run();
            (0..list.len())
                .map(|index| list.state(index).first_pattern())
                .collect()
        })
        .collect()
}

#[test]
fn recording_never_changes_lot_results() {
    let _guard = lock();
    let circuit = library::c17();
    let universe = FaultUniverse::full(&circuit);
    let patterns = patterns(circuit.primary_inputs().len(), 16);
    let list = PpsfpSimulator::new(&circuit).run(&universe, &patterns);
    let dictionary = FaultDictionary::from_fault_list(&list);
    let config = ModelLotConfig {
        chips: 200,
        yield_fraction: 0.25,
        n0: 4.0,
        fault_universe_size: universe.len(),
        seed: 1981,
    };
    let runner = ParallelLotRunner::new().with_threads(4);

    obs::set_mode(MetricsMode::Off);
    let lot_off = ChipLot::from_model(&config);
    let records_off = runner.test_lot(&dictionary, &lot_off);

    obs::reset();
    obs::set_mode(MetricsMode::Json);
    let lot_json = ChipLot::from_model(&config);
    let records_json = runner.test_lot(&dictionary, &lot_json);
    obs::set_mode(MetricsMode::Off);

    assert_eq!(lot_off, lot_json);
    assert_eq!(records_off, records_json);
}
