//! Golden test for collapse-before-simulation in the suite builder.
//!
//! The `table1`/`lsiq-bench` suite-construction path now collapses the full
//! fault universe structurally and simulates one representative per
//! equivalence class by default.  Because equivalent faults are detected by
//! exactly the same patterns, the optimisation must be *invisible*: this
//! test pins the reported coverages to their pre-collapsing golden values
//! and requires byte-identity between the collapse-on and collapse-off
//! builds on every engine.

use lsi_quality::exec::EngineKind;
use lsi_quality::fault::universe::FaultUniverse;
use lsi_quality::netlist::library;
use lsi_quality::tpg::suite::TestSuiteBuilder;

#[test]
fn collapsed_suite_coverages_match_the_golden_values() {
    // Golden numbers recorded before collapsing became the default.
    let cases = [
        ("c17", library::c17(), 32usize, 46usize, 1.0),
        ("alu4", library::alu4(), 64, 466, 0.978_991_596_638_655),
    ];
    for (name, circuit, patterns, detected, coverage) in cases {
        let universe = FaultUniverse::full(&circuit);
        let suite = TestSuiteBuilder::default().build(&circuit, &universe);
        assert_eq!(suite.patterns.len(), patterns, "{name}");
        assert_eq!(suite.fault_list.detected_count(), detected, "{name}");
        assert!(
            (suite.coverage() - coverage).abs() < 1e-12,
            "{name}: coverage {} != golden {coverage}",
            suite.coverage()
        );
    }
}

#[test]
fn collapse_on_and_off_agree_on_every_engine() {
    let circuit = library::alu4();
    let universe = FaultUniverse::full(&circuit);
    for engine in EngineKind::ALL {
        let collapsed = TestSuiteBuilder {
            engine,
            ..TestSuiteBuilder::default()
        }
        .build(&circuit, &universe);
        let raw = TestSuiteBuilder {
            engine,
            collapse: false,
            ..TestSuiteBuilder::default()
        }
        .build(&circuit, &universe);
        assert_eq!(collapsed.fault_list, raw.fault_list, "{engine}");
        assert_eq!(collapsed.coverage_curve, raw.coverage_curve, "{engine}");
        assert_eq!(collapsed.dictionary, raw.dictionary, "{engine}");
    }
}
