//! Integration test: Monte-Carlo validation of the analytic model.
//!
//! The closed-form expressions (eq. 7–9) are checked against direct
//! simulation of the statistical model they describe: generate chips from the
//! shifted-Poisson fault distribution, "cover" a random subset of the fault
//! universe, and compare observed escape/reject/rejected-fraction frequencies
//! with the formulas.

use lsi_quality::quality::detection::rejected_fraction;
use lsi_quality::quality::escape::{BadChipYield, EscapeApproximation, EscapeProbability};
use lsi_quality::quality::fault_distribution::FaultCountDistribution;
use lsi_quality::quality::params::{FaultCoverage, ModelParams, Yield};
use lsi_quality::quality::reject::field_reject_rate;
use lsi_quality::stats::rng::{sample_indices, Xoshiro256StarStar};

struct MonteCarloOutcome {
    rejected_fraction: f64,
    field_reject_rate: f64,
    bad_chip_yield: f64,
}

/// Simulates `chips` chips under the statistical model with a fault universe
/// of `universe` sites of which a fraction `coverage` is covered by tests.
fn simulate(
    params: &ModelParams,
    universe: usize,
    coverage: f64,
    chips: usize,
    seed: u64,
) -> MonteCarloOutcome {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let covered = (coverage * universe as f64).round() as usize;
    let distribution = FaultCountDistribution::new(*params);
    let mut rejected = 0usize;
    let mut shipped = 0usize;
    let mut shipped_bad = 0usize;
    for _ in 0..chips {
        let fault_count = distribution.sample(&mut rng) as usize;
        let fault_count = fault_count.min(universe);
        // The chip fails the tests when at least one of its faults falls in
        // the covered part of the universe.  Covered faults are, without loss
        // of generality, the indices below `covered`.
        let faults = sample_indices(universe, fault_count, &mut rng);
        let detected = faults.iter().any(|&index| index < covered);
        if detected {
            rejected += 1;
        } else {
            shipped += 1;
            if fault_count > 0 {
                shipped_bad += 1;
            }
        }
    }
    MonteCarloOutcome {
        rejected_fraction: rejected as f64 / chips as f64,
        field_reject_rate: if shipped == 0 {
            0.0
        } else {
            shipped_bad as f64 / shipped as f64
        },
        bad_chip_yield: shipped_bad as f64 / chips as f64,
    }
}

#[test]
fn closed_forms_match_monte_carlo() {
    let params = ModelParams::new(Yield::new(0.2).expect("valid"), 6.0).expect("valid");
    let universe = 5_000;
    let chips = 60_000;
    for &coverage in &[0.1, 0.4, 0.7, 0.9] {
        let outcome = simulate(&params, universe, coverage, chips, 99);
        let f = FaultCoverage::new(coverage).expect("valid");
        let predicted_p = rejected_fraction(&params, f);
        let predicted_r = field_reject_rate(&params, f).value();
        let predicted_ybg = BadChipYield::new(params).closed_form(f);
        assert!(
            (outcome.rejected_fraction - predicted_p).abs() < 0.01,
            "f={coverage}: P(f) {} vs {}",
            outcome.rejected_fraction,
            predicted_p
        );
        assert!(
            (outcome.field_reject_rate - predicted_r).abs() < 0.01,
            "f={coverage}: r(f) {} vs {}",
            outcome.field_reject_rate,
            predicted_r
        );
        assert!(
            (outcome.bad_chip_yield - predicted_ybg).abs() < 0.01,
            "f={coverage}: Ybg {} vs {}",
            outcome.bad_chip_yield,
            predicted_ybg
        );
    }
}

#[test]
fn hypergeometric_escape_matches_urn_simulation() {
    // Draw the urn experiment of Section 4 directly and compare with q0(n).
    let mut rng = Xoshiro256StarStar::seed_from_u64(7);
    let universe = 400usize;
    let covered = 240usize;
    let escape = EscapeProbability::new(universe as u64, covered as u64).expect("valid");
    for &present in &[1usize, 3, 6] {
        let trials = 40_000;
        let mut escapes = 0usize;
        for _ in 0..trials {
            let faults = sample_indices(universe, present, &mut rng);
            if faults.iter().all(|&index| index >= covered) {
                escapes += 1;
            }
        }
        let observed = escapes as f64 / trials as f64;
        let exact = escape
            .escape(present as u64, EscapeApproximation::Exact)
            .expect("valid");
        assert!(
            (observed - exact).abs() < 0.01,
            "n={present}: observed {observed} vs exact {exact}"
        );
    }
}

#[test]
fn shifted_poisson_sampling_matches_pmf() {
    let params = ModelParams::new(Yield::new(0.07).expect("valid"), 8.0).expect("valid");
    let distribution = FaultCountDistribution::new(params);
    let mut rng = Xoshiro256StarStar::seed_from_u64(3);
    let samples = 200_000usize;
    let mut histogram = vec![0usize; 40];
    for _ in 0..samples {
        let n = distribution.sample(&mut rng) as usize;
        if n < histogram.len() {
            histogram[n] += 1;
        }
    }
    for n in 0..20u64 {
        let observed = histogram[n as usize] as f64 / samples as f64;
        let expected = distribution.pmf(n);
        assert!(
            (observed - expected).abs() < 0.005,
            "n={n}: observed {observed} vs pmf {expected}"
        );
    }
}

#[test]
fn reject_rate_definition_matches_its_components() {
    // r = Ybg / (y + Ybg) by definition; check the implementation keeps the
    // identity over a parameter sweep.
    for &y in &[0.07, 0.3, 0.8] {
        for &n0 in &[1.5, 8.0, 15.0] {
            let params = ModelParams::new(Yield::new(y).expect("valid"), n0).expect("valid");
            for step in 0..=10 {
                let f = FaultCoverage::new(step as f64 / 10.0).expect("valid");
                let ybg = BadChipYield::new(params).closed_form(f);
                let r = field_reject_rate(&params, f).value();
                assert!((r - ybg / (y + ybg)).abs() < 1e-12);
            }
        }
    }
}
