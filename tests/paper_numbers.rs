//! Integration test: the headline numbers of the paper's Section 4, 6 and 7
//! come out of the library end to end.

use lsi_quality::quality::baseline::{WadsackModel, WilliamsBrownModel};
use lsi_quality::quality::chip_test::ChipTestTable;
use lsi_quality::quality::coverage_requirement::{
    required_coverage_at_yield, required_fault_coverage,
};
use lsi_quality::quality::estimate::N0Estimator;
use lsi_quality::quality::params::{FaultCoverage, ModelParams, RejectRate, Yield};
use lsi_quality::quality::reject::field_reject_rate;

fn yield_of(value: f64) -> Yield {
    Yield::new(value).expect("valid yield")
}

fn reject(value: f64) -> RejectRate {
    RejectRate::new(value).expect("valid reject rate")
}

#[test]
fn section_seven_n0_estimation_from_table_1() {
    let table = ChipTestTable::paper_table_1();
    let estimate = N0Estimator::default()
        .estimate(&table, yield_of(0.07))
        .expect("estimation succeeds");
    // "The experimental points closely match the curve corresponding to n0 = 8."
    assert!(
        (estimate.curve_fit_n0 - 8.0).abs() < 1.0,
        "curve-fit n0 = {}",
        estimate.curve_fit_n0
    );
    // "P'(0) = 0.41/0.05 = 8.2" and "n0 = 8.2/0.93 = 8.8".
    assert!((estimate.origin_slope - 8.2).abs() < 0.5);
    assert!((estimate.slope_n0 - 8.8).abs() < 0.6);
}

#[test]
fn section_seven_required_coverage() {
    // "Taking n0 = 8 ... for a 1 percent field reject rate, the fault
    // coverage should be about 80 percent ... improved to 95 percent in order
    // to achieve a field reject rate of 1-in-1000."
    let params = ModelParams::new(yield_of(0.07), 8.0).expect("valid");
    let at_1_percent = required_fault_coverage(&params, reject(0.01)).expect("solves");
    assert!(
        (at_1_percent.value() - 0.80).abs() < 0.04,
        "{}",
        at_1_percent.value()
    );
    let at_1_in_1000 = required_fault_coverage(&params, reject(0.001)).expect("solves");
    assert!(
        (at_1_in_1000.value() - 0.95).abs() < 0.03,
        "{}",
        at_1_in_1000.value()
    );
}

#[test]
fn section_seven_wadsack_comparison() {
    // "From this formula, for r = 0.01, y = 0.07, we get f = 99 percent and
    // for r = 0.001, f = 99.9 percent."
    let wadsack = WadsackModel::new(yield_of(0.07));
    let at_1_percent = wadsack
        .required_fault_coverage(reject(0.01))
        .expect("valid");
    assert!((at_1_percent.value() - 0.99).abs() < 0.005);
    let at_1_in_1000 = wadsack
        .required_fault_coverage(reject(0.001))
        .expect("valid");
    assert!((at_1_in_1000.value() - 0.999).abs() < 0.001);
    // Williams-Brown is similarly demanding at this yield.
    let williams_brown = WilliamsBrownModel::new(yield_of(0.07));
    assert!(
        williams_brown
            .required_fault_coverage(reject(0.01))
            .expect("valid")
            .value()
            > 0.98
    );
}

#[test]
fn section_four_figure_1_reference_points() {
    // y = 0.80: reject below 0.5 percent needs ~95 percent coverage at n0 = 2
    // but only ~38 percent at n0 = 10.
    let msi_n0_2 = ModelParams::new(yield_of(0.80), 2.0).expect("valid");
    let msi_n0_10 = ModelParams::new(yield_of(0.80), 10.0).expect("valid");
    let f_2 = required_fault_coverage(&msi_n0_2, reject(0.005)).expect("solves");
    let f_10 = required_fault_coverage(&msi_n0_10, reject(0.005)).expect("solves");
    assert!((f_2.value() - 0.95).abs() < 0.02, "n0=2: {}", f_2.value());
    assert!(
        (f_10.value() - 0.38).abs() < 0.04,
        "n0=10: {}",
        f_10.value()
    );
    // y = 0.20, n0 = 10: about 63 percent.
    let lsi_n0_10 = ModelParams::new(yield_of(0.20), 10.0).expect("valid");
    let f_lsi = required_fault_coverage(&lsi_n0_10, reject(0.005)).expect("solves");
    assert!((f_lsi.value() - 0.63).abs() < 0.04, "{}", f_lsi.value());
}

#[test]
fn section_six_figure_4_spot_check() {
    // "if the field reject rate was specified as one in a thousand ... for
    // yield y = 0.3 and n0 = 8, the fault coverage should be about 85 percent."
    let coverage = required_coverage_at_yield(8.0, reject(0.001), yield_of(0.3)).expect("solves");
    assert!(
        (coverage.value() - 0.85).abs() < 0.03,
        "{}",
        coverage.value()
    );
}

#[test]
fn reject_rate_and_requirement_are_mutually_consistent() {
    // Whatever coverage the solver proposes must achieve the target when fed
    // back through eq. 8, across a sweep of parameters.
    for &y in &[0.05, 0.2, 0.5, 0.9] {
        for &n0 in &[1.0, 2.0, 8.0, 20.0] {
            for &r in &[0.02, 0.005, 0.0005] {
                let params = ModelParams::new(yield_of(y), n0).expect("valid");
                let coverage = required_fault_coverage(&params, reject(r)).expect("solves");
                let achieved = field_reject_rate(&params, coverage);
                assert!(
                    achieved.value() <= r + 1e-9,
                    "y={y} n0={n0} r={r}: achieved {}",
                    achieved.value()
                );
                // And one point less coverage would miss the target (unless
                // the requirement was already zero).
                if coverage.value() > 0.02 {
                    let slack = FaultCoverage::new(coverage.value() - 0.02).expect("valid");
                    assert!(field_reject_rate(&params, slack).value() > r);
                }
            }
        }
    }
}
