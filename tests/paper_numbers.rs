//! Integration test: the headline numbers of the paper's Section 4, 6 and 7
//! come out of the library end to end.

use lsi_quality::quality::baseline::{WadsackModel, WilliamsBrownModel};
use lsi_quality::quality::chip_test::ChipTestTable;
use lsi_quality::quality::coverage_requirement::{
    required_coverage_at_yield, required_fault_coverage,
};
use lsi_quality::quality::estimate::N0Estimator;
use lsi_quality::quality::params::{FaultCoverage, ModelParams, RejectRate, Yield};
use lsi_quality::quality::reject::field_reject_rate;

fn yield_of(value: f64) -> Yield {
    Yield::new(value).expect("valid yield")
}

fn reject(value: f64) -> RejectRate {
    RejectRate::new(value).expect("valid reject rate")
}

#[test]
fn section_seven_n0_estimation_from_table_1() {
    let table = ChipTestTable::paper_table_1();
    let estimate = N0Estimator::default()
        .estimate(&table, yield_of(0.07))
        .expect("estimation succeeds");
    // "The experimental points closely match the curve corresponding to n0 = 8."
    assert!(
        (estimate.curve_fit_n0 - 8.0).abs() < 1.0,
        "curve-fit n0 = {}",
        estimate.curve_fit_n0
    );
    // "P'(0) = 0.41/0.05 = 8.2" and "n0 = 8.2/0.93 = 8.8".
    assert!((estimate.origin_slope - 8.2).abs() < 0.5);
    assert!((estimate.slope_n0 - 8.8).abs() < 0.6);
}

#[test]
fn section_seven_required_coverage() {
    // "Taking n0 = 8 ... for a 1 percent field reject rate, the fault
    // coverage should be about 80 percent ... improved to 95 percent in order
    // to achieve a field reject rate of 1-in-1000."
    let params = ModelParams::new(yield_of(0.07), 8.0).expect("valid");
    let at_1_percent = required_fault_coverage(&params, reject(0.01)).expect("solves");
    assert!(
        (at_1_percent.value() - 0.80).abs() < 0.04,
        "{}",
        at_1_percent.value()
    );
    let at_1_in_1000 = required_fault_coverage(&params, reject(0.001)).expect("solves");
    assert!(
        (at_1_in_1000.value() - 0.95).abs() < 0.03,
        "{}",
        at_1_in_1000.value()
    );
}

#[test]
fn section_seven_wadsack_comparison() {
    // "From this formula, for r = 0.01, y = 0.07, we get f = 99 percent and
    // for r = 0.001, f = 99.9 percent."
    let wadsack = WadsackModel::new(yield_of(0.07));
    let at_1_percent = wadsack
        .required_fault_coverage(reject(0.01))
        .expect("valid");
    assert!((at_1_percent.value() - 0.99).abs() < 0.005);
    let at_1_in_1000 = wadsack
        .required_fault_coverage(reject(0.001))
        .expect("valid");
    assert!((at_1_in_1000.value() - 0.999).abs() < 0.001);
    // Williams-Brown is similarly demanding at this yield.
    let williams_brown = WilliamsBrownModel::new(yield_of(0.07));
    assert!(
        williams_brown
            .required_fault_coverage(reject(0.01))
            .expect("valid")
            .value()
            > 0.98
    );
}

#[test]
fn section_four_figure_1_reference_points() {
    // y = 0.80: reject below 0.5 percent needs ~95 percent coverage at n0 = 2
    // but only ~38 percent at n0 = 10.
    let msi_n0_2 = ModelParams::new(yield_of(0.80), 2.0).expect("valid");
    let msi_n0_10 = ModelParams::new(yield_of(0.80), 10.0).expect("valid");
    let f_2 = required_fault_coverage(&msi_n0_2, reject(0.005)).expect("solves");
    let f_10 = required_fault_coverage(&msi_n0_10, reject(0.005)).expect("solves");
    assert!((f_2.value() - 0.95).abs() < 0.02, "n0=2: {}", f_2.value());
    assert!(
        (f_10.value() - 0.38).abs() < 0.04,
        "n0=10: {}",
        f_10.value()
    );
    // y = 0.20, n0 = 10: about 63 percent.
    let lsi_n0_10 = ModelParams::new(yield_of(0.20), 10.0).expect("valid");
    let f_lsi = required_fault_coverage(&lsi_n0_10, reject(0.005)).expect("solves");
    assert!((f_lsi.value() - 0.63).abs() < 0.04, "{}", f_lsi.value());
}

#[test]
fn section_six_figure_4_spot_check() {
    // "if the field reject rate was specified as one in a thousand ... for
    // yield y = 0.3 and n0 = 8, the fault coverage should be about 85 percent."
    let coverage = required_coverage_at_yield(8.0, reject(0.001), yield_of(0.3)).expect("solves");
    assert!(
        (coverage.value() - 0.85).abs() < 0.03,
        "{}",
        coverage.value()
    );
}

/// Golden tolerance for pinned model outputs.
///
/// The paper-tolerance tests above only guard against gross regressions; the
/// golden tests below pin the *exact* values this implementation produced at
/// the time the deductive-engine rewrite landed, so that performance
/// refactors of the simulators, solvers or special functions cannot silently
/// shift any reproduced number.  The tolerance leaves room for harmless
/// floating-point reassociation (e.g. a different summation order) but not
/// for a model change: every pinned quantity lives in `[0, 10]`, so 1e-9 is
/// about eight significant digits.
const GOLDEN_TOLERANCE: f64 = 1e-9;

fn assert_golden(actual: f64, golden: f64, what: &str) {
    assert!(
        (actual - golden).abs() <= GOLDEN_TOLERANCE,
        "{what}: got {actual:.12}, pinned {golden:.12} (tolerance {GOLDEN_TOLERANCE:e})"
    );
}

#[test]
fn golden_table_1_estimator_outputs() {
    let table = ChipTestTable::paper_table_1();
    let estimate = N0Estimator::default()
        .estimate(&table, yield_of(0.07))
        .expect("estimation succeeds");
    assert_golden(
        estimate.curve_fit_n0,
        8.695719103668,
        "Table 1 curve-fit n0",
    );
    assert_golden(
        estimate.origin_slope,
        8.158844765343,
        "Table 1 origin slope P'(0)",
    );
    assert_golden(estimate.slope_n0, 8.772951360584, "Table 1 slope n0");
}

#[test]
fn golden_figure_1_required_coverage() {
    let cases = [
        (0.80, 2.0, 0.005, 0.948123380571, "Fig. 1, y=0.80, n0=2"),
        (0.80, 10.0, 0.005, 0.380845549196, "Fig. 1, y=0.80, n0=10"),
        (0.20, 10.0, 0.005, 0.631310861441, "Fig. 1, y=0.20, n0=10"),
    ];
    for (y, n0, r, golden, what) in cases {
        let params = ModelParams::new(yield_of(y), n0).expect("valid");
        let coverage = required_fault_coverage(&params, reject(r)).expect("solves");
        assert_golden(coverage.value(), golden, what);
    }
}

#[test]
fn golden_section_seven_requirements_and_reject_rates() {
    let params = ModelParams::new(yield_of(0.07), 8.0).expect("valid");
    let at_1_percent = required_fault_coverage(&params, reject(0.01)).expect("solves");
    assert_golden(at_1_percent.value(), 0.797692100808, "required f at r=1%");
    let at_1_in_1000 = required_fault_coverage(&params, reject(0.001)).expect("solves");
    assert_golden(at_1_in_1000.value(), 0.944122224406, "required f at r=0.1%");
    // Equation 8 evaluated directly at three coverages.
    let coverage = |f: f64| FaultCoverage::new(f).expect("valid");
    assert_golden(
        field_reject_rate(&params, coverage(0.5)).value(),
        0.167080977360,
        "r(f=0.50)",
    );
    assert_golden(
        field_reject_rate(&params, coverage(0.8)).value(),
        0.009730146156,
        "r(f=0.80)",
    );
    assert_golden(
        field_reject_rate(&params, coverage(0.95)).value(),
        0.000858862120,
        "r(f=0.95)",
    );
    // Figure 4 constant-reject contour spot value.
    let fig4 = required_coverage_at_yield(8.0, reject(0.001), yield_of(0.3)).expect("solves");
    assert_golden(fig4.value(), 0.843115404714, "Fig. 4, y=0.3, n0=8");
    // Baseline models at the paper's yield.
    let wadsack = WadsackModel::new(yield_of(0.07));
    assert_golden(
        wadsack
            .required_fault_coverage(reject(0.01))
            .expect("valid")
            .value(),
        0.989247311828,
        "Wadsack f at r=1%",
    );
    assert_golden(
        wadsack
            .required_fault_coverage(reject(0.001))
            .expect("valid")
            .value(),
        0.998924731183,
        "Wadsack f at r=0.1%",
    );
    assert_golden(
        WilliamsBrownModel::new(yield_of(0.07))
            .required_fault_coverage(reject(0.01))
            .expect("valid")
            .value(),
        0.996220626898,
        "Williams-Brown f at r=1%",
    );
}

#[test]
fn golden_fault_simulation_pipeline_on_alu4() {
    // End-to-end pin of the simulation side: a deterministic random pattern
    // suite on the 4-bit ALU must keep detecting exactly the same faults at
    // exactly the same patterns through any engine or data-structure
    // refactor.  These are integer counts and exactly representable curve
    // points, so the comparison is exact.
    use lsi_quality::fault::universe::FaultUniverse;
    use lsi_quality::netlist::library;
    use lsi_quality::tpg::suite::TestSuiteBuilder;
    let circuit = library::alu4();
    let universe = FaultUniverse::full(&circuit);
    let suite = TestSuiteBuilder {
        seed: 1981,
        chunk: 32,
        max_random_patterns: 128,
        target_coverage: 0.95,
        podem_top_up: false,
        ..TestSuiteBuilder::default()
    }
    .build(&circuit, &universe);
    assert_eq!(universe.len(), 476);
    assert_eq!(suite.patterns.len(), 64);
    assert_eq!(suite.fault_list.detected_count(), 461);
    let curve_coverage_after = |patterns: usize| {
        suite
            .coverage_curve
            .points()
            .nth(patterns - 1)
            .map(|(_, coverage)| coverage)
            .expect("curve point exists")
    };
    assert_golden(
        curve_coverage_after(8),
        0.758403361345,
        "alu4 coverage after 8 patterns",
    );
    assert_golden(
        curve_coverage_after(16),
        0.911764705882,
        "alu4 coverage after 16 patterns",
    );
    assert_golden(
        curve_coverage_after(32),
        0.934873949580,
        "alu4 coverage after 32 patterns",
    );
}

#[test]
fn golden_fault_simulation_pipeline_is_lane_invariant() {
    // The same end-to-end pin as above under the widest packed lane (and
    // the narrowest, for symmetry): SIMD-wide chunks are a pure throughput
    // change, so every pinned number — detection counts, curve points —
    // must come out identical to the 64-bit baseline at the same 1e-9
    // tolerance.
    use lsi_quality::exec::LaneWidth;
    use lsi_quality::fault::universe::FaultUniverse;
    use lsi_quality::netlist::library;
    use lsi_quality::tpg::suite::TestSuiteBuilder;
    let circuit = library::alu4();
    let universe = FaultUniverse::full(&circuit);
    for lanes in [LaneWidth::X1, LaneWidth::X8] {
        let suite = TestSuiteBuilder {
            seed: 1981,
            chunk: 32,
            max_random_patterns: 128,
            target_coverage: 0.95,
            podem_top_up: false,
            lanes,
            ..TestSuiteBuilder::default()
        }
        .build(&circuit, &universe);
        assert_eq!(suite.patterns.len(), 64, "lanes = {lanes}");
        assert_eq!(suite.fault_list.detected_count(), 461, "lanes = {lanes}");
        let curve_coverage_after = |patterns: usize| {
            suite
                .coverage_curve
                .points()
                .nth(patterns - 1)
                .map(|(_, coverage)| coverage)
                .expect("curve point exists")
        };
        assert_golden(
            curve_coverage_after(8),
            0.758403361345,
            &format!("alu4 coverage after 8 patterns, lanes {lanes}"),
        );
        assert_golden(
            curve_coverage_after(16),
            0.911764705882,
            &format!("alu4 coverage after 16 patterns, lanes {lanes}"),
        );
        assert_golden(
            curve_coverage_after(32),
            0.934873949580,
            &format!("alu4 coverage after 32 patterns, lanes {lanes}"),
        );
    }
}

#[test]
fn reject_rate_and_requirement_are_mutually_consistent() {
    // Whatever coverage the solver proposes must achieve the target when fed
    // back through eq. 8, across a sweep of parameters.
    for &y in &[0.05, 0.2, 0.5, 0.9] {
        for &n0 in &[1.0, 2.0, 8.0, 20.0] {
            for &r in &[0.02, 0.005, 0.0005] {
                let params = ModelParams::new(yield_of(y), n0).expect("valid");
                let coverage = required_fault_coverage(&params, reject(r)).expect("solves");
                let achieved = field_reject_rate(&params, coverage);
                assert!(
                    achieved.value() <= r + 1e-9,
                    "y={y} n0={n0} r={r}: achieved {}",
                    achieved.value()
                );
                // And one point less coverage would miss the target (unless
                // the requirement was already zero).
                if coverage.value() > 0.02 {
                    let slack = FaultCoverage::new(coverage.value() - 0.02).expect("valid");
                    assert!(field_reject_rate(&params, slack).value() > r);
                }
            }
        }
    }
}
