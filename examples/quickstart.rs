//! Quickstart: the paper's Section 7 analysis in a dozen lines.
//!
//! Run with: `cargo run --example quickstart`

use lsi_quality::quality::baseline::WadsackModel;
use lsi_quality::quality::chip_test::ChipTestTable;
use lsi_quality::quality::coverage_requirement::required_fault_coverage;
use lsi_quality::quality::estimate::N0Estimator;
use lsi_quality::quality::params::{ModelParams, RejectRate, Yield};
use lsi_quality::quality::reject::field_reject_rate;
use lsi_quality::quality::QualityError;

fn main() -> Result<(), QualityError> {
    // The paper's Table 1: 277 chips from a ~7 percent-yield LSI lot, with
    // the cumulative fraction of failing chips recorded against the
    // cumulative fault coverage of the applied patterns.
    let table = ChipTestTable::paper_table_1();
    println!("{}", table.to_table());

    // Step 1 — estimate n0, the average number of faults on a defective chip.
    let chip_yield = Yield::new(0.07)?;
    let estimate = N0Estimator::default().estimate(&table, chip_yield)?;
    println!(
        "n0 estimate: curve fit = {:.1}, origin slope P'(0) = {:.1}, slope-derived n0 = {:.1}",
        estimate.curve_fit_n0, estimate.origin_slope, estimate.slope_n0
    );

    // Step 2 — with (y, n0) characterised, ask what fault coverage any
    // field-reject target needs.
    let params = ModelParams::new(chip_yield, estimate.curve_fit_n0.round())?;
    for target in [0.01, 0.005, 0.001] {
        let reject = RejectRate::new(target)?;
        let needed = required_fault_coverage(&params, reject)?;
        let wadsack = WadsackModel::new(chip_yield).required_fault_coverage(reject)?;
        println!(
            "reject target {:>5.3}: this model needs {:>5.1}% coverage, Wadsack needs {:>5.1}%",
            target,
            needed.percent(),
            wadsack.percent()
        );
    }

    // Step 3 — sanity check: what reject rate does 80 percent coverage give?
    let achieved = field_reject_rate(
        &params,
        lsi_quality::quality::params::FaultCoverage::new(0.80)?,
    );
    println!(
        "at 80% coverage the predicted field reject rate is {:.2}%",
        achieved.percent()
    );
    Ok(())
}
