//! Determining `n0` for a freshly simulated production lot (Section 5).
//!
//! This example replays the paper's experimental procedure end to end, but on
//! the simulated line: build a circuit and an ordered pattern set, run a lot
//! of chips with a *known* ground-truth `n0` through the wafer tester, and
//! check that the estimation procedure recovers it.
//!
//! Run with: `cargo run --release --example determine_n0`

use lsi_quality::fault::coverage::CoverageCurve;
use lsi_quality::fault::universe::FaultUniverse;
use lsi_quality::manufacturing::experiment::RejectExperiment;
use lsi_quality::manufacturing::lot::{ChipLot, ModelLotConfig};
use lsi_quality::manufacturing::tester::WaferTester;
use lsi_quality::netlist::library;
use lsi_quality::quality::chip_test::ChipTestTable;
use lsi_quality::quality::estimate::N0Estimator;
use lsi_quality::quality::params::Yield;
use lsi_quality::tpg::suite::TestSuiteBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Ground truth we will try to recover.
    let true_yield = 0.20;
    let true_n0 = 7.0;

    // 1. The "chip": a 4-bit ALU stands in for the device under test.
    let circuit = library::alu4();
    let universe = FaultUniverse::full(&circuit);
    println!(
        "circuit `{}`: {} gates, {} stuck-at faults",
        circuit.name(),
        circuit.gate_count(),
        universe.len()
    );

    // 2. The ordered pattern set and its cumulative coverage curve, obtained
    //    from the fault simulator exactly as the paper prescribes.
    let suite = TestSuiteBuilder {
        seed: 1981,
        target_coverage: 0.99,
        ..TestSuiteBuilder::default()
    }
    .build(&circuit, &universe);
    println!(
        "pattern set: {} patterns, final coverage {:.1}%",
        suite.patterns.len(),
        suite.coverage() * 100.0
    );

    // 3. A lot of chips drawn from the statistical model with known (y, n0).
    let lot = ChipLot::from_model(&ModelLotConfig {
        chips: 2_000,
        yield_fraction: true_yield,
        n0: true_n0,
        fault_universe_size: universe.len(),
        seed: 7,
    });

    // 4. Wafer test: record each chip's first failing pattern and tabulate
    //    the cumulative reject fraction against coverage.
    let records = WaferTester::new(&suite.dictionary).test_lot(&lot);
    let coverage_curve = CoverageCurve::from_fault_list(&suite.fault_list, suite.patterns.len());
    let checkpoints: Vec<usize> = (1..=suite.patterns.len()).collect();
    let experiment = RejectExperiment::tabulate(&records, &coverage_curve, &checkpoints);

    // 5. Estimate n0 from the experiment and compare with the ground truth.
    let table = ChipTestTable::from_fractions(
        &experiment.coverage_vs_fraction(),
        experiment.total_chips(),
    )?;
    let estimate = N0Estimator::default().estimate(&table, Yield::new(lot.observed_yield())?)?;
    println!("ground truth: y = {true_yield}, n0 = {true_n0}");
    println!(
        "lot observed: y = {:.3}, n0 = {:.2}",
        lot.observed_yield(),
        lot.observed_n0()
    );
    println!(
        "estimated:    curve-fit n0 = {:.2}, slope n0 = {:.2} (P'(0) = {:.2})",
        estimate.curve_fit_n0, estimate.slope_n0, estimate.origin_slope
    );
    Ok(())
}
