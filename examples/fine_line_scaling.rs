//! Fine-line scaling study (the paper's Concluding Remarks).
//!
//! Shrinking a circuit raises its yield (smaller area) but also raises `n0`
//! (one physical defect hits more logic), and both effects *lower* the fault
//! coverage required for a given field reject rate.  This example sweeps a
//! scaling factor and prints the required coverage at each node.
//!
//! Run with: `cargo run --example fine_line_scaling`

use lsi_quality::quality::coverage_requirement::required_fault_coverage;
use lsi_quality::quality::params::{ModelParams, RejectRate, Yield};
use lsi_quality::quality::yield_model::YieldModel;
use lsi_quality::quality::QualityError;

fn main() -> Result<(), QualityError> {
    // Baseline process: the Section 7 chip (about 7 percent yield, n0 = 8).
    let baseline_defects =
        YieldModel::NegativeBinomial { lambda: 1.0 }.defects_for_yield(Yield::new(0.07)?)?;
    let baseline_n0 = 8.0;
    let target = RejectRate::new(0.001)?;

    println!("field reject target: 1 in 1000");
    println!("scale  | area  | yield  | n0    | required coverage");
    println!("-------|-------|--------|-------|------------------");
    for step in 0..=4 {
        // Each step shrinks linear dimensions by 20 percent.
        let linear_scale = 1.0 - 0.2 * step as f64 / 2.0;
        let area_scale = linear_scale * linear_scale;
        // Yield improves because the chip collects fewer defects...
        let defects = baseline_defects * area_scale;
        let chip_yield = YieldModel::NegativeBinomial { lambda: 1.0 }.yield_for_defects(defects)?;
        // ...while each remaining defect clobbers more of the (denser) logic.
        let n0 = baseline_n0 / area_scale;
        let params = ModelParams::new(chip_yield, n0)?;
        let required = required_fault_coverage(&params, target)?;
        println!(
            "{:>5.2}x | {:>4.2}x | {:>5.1}% | {:>5.1} | {:>16.1}%",
            linear_scale,
            area_scale,
            chip_yield.percent(),
            n0,
            required.percent()
        );
    }
    println!();
    println!(
        "Both effects push the requirement down: the finer the process, the\n\
         less single-stuck-at coverage is needed for the same outgoing quality."
    );
    Ok(())
}
