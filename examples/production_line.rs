//! A full production-line study: physical defects, wafer maps, wafer test and
//! measured-versus-predicted field reject rate.
//!
//! Run with: `cargo run --release --example production_line`
//!
//! Knobs (environment variables):
//!
//! * `LSIQ_ENGINE` — fault-simulation engine building the test programme
//!   (`serial`, `ppsfp`, `deductive`, `parallel`; default `parallel`),
//! * `LSIQ_LOT_THREADS` — worker threads for lot generation and wafer test
//!   (default: available hardware parallelism); any value produces
//!   byte-identical results,
//! * `LSIQ_SEED` — the run's base seed, printed for reproducibility.

use lsi_quality::fault::simulator::EngineKind;
use lsi_quality::fault::universe::FaultUniverse;
use lsi_quality::manufacturing::defect::DefectModel;
use lsi_quality::manufacturing::field::FieldOutcome;
use lsi_quality::manufacturing::lot::PhysicalLotConfig;
use lsi_quality::manufacturing::pipeline::ParallelLotRunner;
use lsi_quality::manufacturing::wafer::WaferMap;
use lsi_quality::netlist::generator::{random_circuit, RandomCircuitConfig};
use lsi_quality::quality::params::{FaultCoverage, ModelParams, Yield};
use lsi_quality::quality::reject::field_reject_rate;
use lsi_quality::stats::rng::Xoshiro256StarStar;
use lsi_quality::tpg::suite::TestSuiteBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The run's knobs, echoed so any result can be reproduced exactly.
    let engine: EngineKind = match std::env::var("LSIQ_ENGINE") {
        Ok(name) => name.parse()?,
        Err(_) => EngineKind::default(),
    };
    let seed: u64 = match std::env::var("LSIQ_SEED") {
        Ok(value) => value.trim().parse()?,
        Err(_) => 42,
    };
    let chips = 3_000;
    let runner = ParallelLotRunner::new(); // honours LSIQ_LOT_THREADS
    println!(
        "knobs: engine = {engine}, seed = {seed}, lot workers = {} for {chips} chips \
         (LSIQ_ENGINE / LSIQ_SEED / LSIQ_LOT_THREADS to override)",
        runner.threads_for(chips)
    );

    // The device: a random-logic block standing in for an LSI control chip.
    let circuit = random_circuit(&RandomCircuitConfig {
        inputs: 24,
        gates: 800,
        seed: 11,
        ..RandomCircuitConfig::default()
    });
    let universe = FaultUniverse::full(&circuit);
    println!(
        "device: {} gates, {} transistor estimate, {} stuck-at faults",
        circuit.gate_count(),
        circuit.transistor_estimate(),
        universe.len()
    );

    // The process: clustered defects tuned for roughly 25 percent yield.
    let defect_model = DefectModel::for_target_yield(0.25, 1.0)?;
    println!(
        "process: {:.2} defects/chip (clustered), predicted yield {:.1}%",
        defect_model.mean_defects(),
        defect_model.predicted_yield() * 100.0
    );
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let wafer = WaferMap::simulate(12, 24, &defect_model, &mut rng);
    println!(
        "one wafer ({} sites, observed yield {:.1}%):",
        wafer.site_count(),
        wafer.observed_yield() * 100.0
    );
    println!("{}", wafer.ascii());

    // The test programme: random patterns topped up by PODEM.
    let suite = TestSuiteBuilder {
        seed: 3,
        target_coverage: 0.90,
        max_random_patterns: 256,
        engine,
        ..TestSuiteBuilder::default()
    }
    .build(&circuit, &universe);
    println!(
        "test programme: {} patterns ({} deterministic), coverage {:.1}%",
        suite.patterns.len(),
        suite.deterministic_patterns,
        suite.coverage() * 100.0
    );

    // A production lot through the physical pipeline and the wafer tester,
    // both sharded across the runner's worker threads.
    let lot = runner.generate_physical_lot(&PhysicalLotConfig {
        chips,
        defect_model,
        extra_faults_per_defect: 4.0,
        fault_universe_size: universe.len(),
        seed,
    });
    let records = runner.test_lot(&suite.dictionary, &lot);
    let outcome = FieldOutcome::from_records(&records);
    println!(
        "wafer test: {} of {} chips shipped, {} rejected",
        outcome.shipped, outcome.total, outcome.rejected
    );
    println!(
        "measured field reject rate: {:.3}%",
        outcome.field_reject_rate() * 100.0
    );

    // Compare with the paper's prediction using the lot's emergent (y, n0).
    let params = ModelParams::new(
        Yield::new(lot.observed_yield())?,
        lot.observed_n0().max(1.0),
    )?;
    let predicted = field_reject_rate(&params, FaultCoverage::new(suite.coverage())?);
    println!(
        "model prediction at f = {:.1}% with y = {:.2}, n0 = {:.1}: {:.3}%",
        suite.coverage() * 100.0,
        lot.observed_yield(),
        lot.observed_n0(),
        predicted.percent()
    );
    Ok(())
}
