//! A full production-line study: physical defects, wafer maps, wafer test and
//! measured-versus-predicted field reject rate.
//!
//! Run with: `cargo run --release --example production_line`
//!
//! Configuration flows through the typed [`Session`]: one `RunConfig`
//! (engine, workers, base seed) and one persistent worker pool drive every
//! stage.  The `LSIQ_ENGINE` / `LSIQ_LOT_THREADS` / `LSIQ_SEED` environment
//! variables remain as the compatibility layer, parsed in exactly one place
//! (`RunConfig::from_env`); an invalid value exits with a `ConfigError`
//! message instead of a panic.  Any worker count produces byte-identical
//! results — the knobs only change wall-clock time.

use lsi_quality::fault::universe::FaultUniverse;
use lsi_quality::manufacturing::defect::DefectModel;
use lsi_quality::manufacturing::field::FieldOutcome;
use lsi_quality::manufacturing::lot::PhysicalLotConfig;
use lsi_quality::manufacturing::wafer::WaferMap;
use lsi_quality::netlist::generator::{random_circuit, RandomCircuitConfig};
use lsi_quality::quality::params::{FaultCoverage, ModelParams, Yield};
use lsi_quality::quality::reject::field_reject_rate;
use lsi_quality::stats::rng::Xoshiro256StarStar;
use lsi_quality::tpg::suite::TestSuiteBuilder;
use lsi_quality::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The run's knobs, bundled in one typed session and echoed so any
    // result can be reproduced exactly.  A bad LSIQ_* value surfaces here
    // as a ConfigError message, not a panic.
    let session = match Session::from_env() {
        Ok(session) => session,
        Err(error) => {
            eprintln!("lsiq: {error}");
            std::process::exit(2);
        }
    };
    let seed = session.config().base_seed();
    let chips = 3_000;
    let runner = session.lot_runner();
    println!(
        "session: {}, lot workers = {} for {chips} chips \
         (LSIQ_ENGINE / LSIQ_SEED / LSIQ_LOT_THREADS to override)",
        session.config(),
        runner.threads_for(chips)
    );

    // The device: a random-logic block standing in for an LSI control chip.
    let circuit = random_circuit(&RandomCircuitConfig {
        inputs: 24,
        gates: 800,
        seed: 11,
        ..RandomCircuitConfig::default()
    });
    let universe = FaultUniverse::full(&circuit);
    println!(
        "device: {} gates, {} transistor estimate, {} stuck-at faults",
        circuit.gate_count(),
        circuit.transistor_estimate(),
        universe.len()
    );

    // The process: clustered defects tuned for roughly 25 percent yield.
    let defect_model = DefectModel::for_target_yield(0.25, 1.0)?;
    println!(
        "process: {:.2} defects/chip (clustered), predicted yield {:.1}%",
        defect_model.mean_defects(),
        defect_model.predicted_yield() * 100.0
    );
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let wafer = WaferMap::simulate(12, 24, &defect_model, &mut rng);
    println!(
        "one wafer ({} sites, observed yield {:.1}%):",
        wafer.site_count(),
        wafer.observed_yield() * 100.0
    );
    println!("{}", wafer.ascii());

    // The test programme: random patterns topped up by PODEM, fault
    // simulated on the session's engine and worker pool.
    let suite = TestSuiteBuilder {
        seed: 3,
        target_coverage: 0.90,
        max_random_patterns: 256,
        ..TestSuiteBuilder::default()
    }
    .with_run_config(session.config())
    .build_in(session.context(), &circuit, &universe);
    println!(
        "test programme: {} patterns ({} deterministic), coverage {:.1}%",
        suite.patterns.len(),
        suite.deterministic_patterns,
        suite.coverage() * 100.0
    );

    // A production lot through the physical pipeline and the wafer tester,
    // both sharded across the session's persistent worker pool.
    let lot = runner.generate_physical_lot(&PhysicalLotConfig {
        chips,
        defect_model,
        extra_faults_per_defect: 4.0,
        fault_universe_size: universe.len(),
        seed,
    });
    let records = runner.test_lot(&suite.dictionary, &lot);
    let outcome = FieldOutcome::from_records(&records);
    println!(
        "wafer test: {} of {} chips shipped, {} rejected",
        outcome.shipped, outcome.total, outcome.rejected
    );
    println!(
        "measured field reject rate: {:.3}%",
        outcome.field_reject_rate() * 100.0
    );

    // Compare with the paper's prediction using the lot's emergent (y, n0).
    let params = ModelParams::new(
        Yield::new(lot.observed_yield())?,
        lot.observed_n0().max(1.0),
    )?;
    let predicted = field_reject_rate(&params, FaultCoverage::new(suite.coverage())?);
    println!(
        "model prediction at f = {:.1}% with y = {:.2}, n0 = {:.1}: {:.3}%",
        suite.coverage() * 100.0,
        lot.observed_yield(),
        lot.observed_n0(),
        predicted.percent()
    );
    Ok(())
}
