//! `lsi-quality` — a reproduction of Agrawal, Seth & Agrawal,
//! *LSI Product Quality and Fault Coverage* (18th Design Automation
//! Conference, 1981).
//!
//! The paper relates the single stuck-at **fault coverage** of a test set to
//! the **field reject rate** of the tested product through a shifted-Poisson
//! model of the number of faults on a defective chip.  This workspace
//! implements that model together with every substrate the paper's
//! experiment relied on — a gate-level netlist library, logic and fault
//! simulators, test-pattern generation, and a production-line Monte-Carlo
//! standing in for the original wafer-test data.
//!
//! This facade crate re-exports the workspace members under one roof and
//! adds the typed entry point of the whole reproduction: [`Session`], which
//! bundles a [`RunConfig`](exec::RunConfig) (engine, workers, base seed)
//! with a persistent [`ExecutionContext`](exec::ExecutionContext) worker
//! pool and drives the Section 7 experiment in one call
//! ([`Session::run_production_line`] / [`Session::reproduce_table1`]).
//!
//! * [`obs`] — the zero-dependency telemetry layer: the process-global
//!   metrics registry and span timers behind the `LSIQ_METRICS` knob
//!   (see `docs/OBSERVABILITY.md`),
//! * [`exec`] — typed run configuration and the persistent fork-join pool,
//! * [`stats`] — PRNGs, distributions, fitting, root finding,
//! * [`netlist`] — circuits (combinational and sequential), `.bench` / BLIF
//!   parsing, generators, full-scan insertion,
//! * [`sim`] — logic simulation,
//! * [`fault`] — stuck-at faults and fault simulation,
//! * [`bist`] — built-in self-test: STUMPS pattern generation, MISR
//!   signature compaction, per-fault signature dictionaries and aliasing
//!   analysis (driven by [`Session::run_bist_sweep`] and the
//!   `LSIQ_TEST_MODE=bist` wafer-test mode),
//! * [`tpg`] — random/LFSR/weighted pattern generation and PODEM,
//! * [`manufacturing`] — defects, wafers, chip lots, the Sentry-like tester
//!   and the multi-threaded production-line pipeline
//!   ([`ParallelLotRunner`](manufacturing::pipeline::ParallelLotRunner) /
//!   [`LotSweep`](manufacturing::pipeline::LotSweep)),
//! * [`quality`] — the paper's model itself (fault distribution, reject
//!   rate, `n0` estimation, required coverage, baselines).
//!
//! # Quickstart
//!
//! ```
//! use lsi_quality::quality::chip_test::ChipTestTable;
//! use lsi_quality::quality::coverage_requirement::required_fault_coverage;
//! use lsi_quality::quality::estimate::N0Estimator;
//! use lsi_quality::quality::params::{ModelParams, RejectRate, Yield};
//!
//! # fn main() -> Result<(), lsi_quality::quality::QualityError> {
//! // Estimate n0 from the paper's Table 1 and ask what coverage a
//! // 1-percent field reject rate needs.
//! let table = ChipTestTable::paper_table_1();
//! let estimate = N0Estimator::default().estimate(&table, Yield::new(0.07)?)?;
//! let params = ModelParams::new(Yield::new(0.07)?, estimate.curve_fit_n0)?;
//! let coverage = required_fault_coverage(&params, RejectRate::new(0.01)?)?;
//! assert!(coverage.value() < 0.9); // far below the 99 percent of older models
//! # Ok(())
//! # }
//! ```

pub mod session;

pub use lsiq_bist as bist;
pub use lsiq_core as quality;
pub use lsiq_exec as exec;
pub use lsiq_fault as fault;
pub use lsiq_manufacturing as manufacturing;
pub use lsiq_netlist as netlist;
pub use lsiq_obs as obs;
pub use lsiq_sim as sim;
pub use lsiq_stats as stats;
pub use lsiq_tpg as tpg;

pub use session::{
    BistSweep, BistSweepRow, BistSweepSpec, LineExperiment, LineSpec, Session, PROGRAMME_SEED,
};

#[cfg(test)]
mod tests {
    #[test]
    fn facade_re_exports_are_wired() {
        let circuit = crate::netlist::library::c17();
        let universe = crate::fault::universe::FaultUniverse::full(&circuit);
        assert_eq!(universe.len(), 46);
        let table = crate::quality::chip_test::ChipTestTable::paper_table_1();
        assert_eq!(table.total_chips(), 277);
    }
}
