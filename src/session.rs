//! The one-call entry point of the reproduction: a typed [`Session`]
//! bundling a [`RunConfig`] with a persistent [`ExecutionContext`].
//!
//! The paper's experiment is one coherent campaign: build an ordered test
//! programme (Section 5), wafer-test a lot of chips recording each chip's
//! first failing pattern (Section 7), and tabulate the cumulative-reject
//! table the model is fitted to (Table 1).  A `Session` owns everything
//! those stages share — the engine choice, the worker pool, the base seed —
//! so the bench binaries, the `production_line` example and the ablation
//! tools all configure a run in exactly one place and reuse the same parked
//! worker threads end to end:
//!
//! ```
//! use lsi_quality::exec::{EngineKind, RunConfig};
//! use lsi_quality::Session;
//!
//! let session = Session::new(
//!     RunConfig::default()
//!         .with_engine(EngineKind::Deductive)
//!         .with_workers(2),
//! );
//! assert_eq!(session.config().engine(), EngineKind::Deductive);
//!
//! // The session's pool serves any fork-join workload…
//! let mut cubes = vec![0u64; 4];
//! session.context().scope(|scope| {
//!     for (value, slot) in cubes.iter_mut().enumerate() {
//!         scope.spawn(move || *slot = (value * value * value) as u64);
//!     }
//! });
//! assert_eq!(cubes, [0, 1, 8, 27]);
//! // …and its lot runner shards production lots on the same workers.
//! assert!(session.lot_runner().threads_for(100_000) >= 1);
//! ```
//!
//! [`Session::from_env`] is the environment-compatibility layer: it builds
//! the config from the `LSIQ_*` variables through the single parsing site
//! ([`RunConfig::from_env`]) and surfaces a [`ConfigError`] instead of a
//! panic, so binaries can exit gracefully on a bad knob.

use lsiq_bist::aliasing::AliasingReport;
use lsiq_bist::misr::Misr;
use lsiq_bist::signature::{BistPlan, SignatureDictionary};
use lsiq_bist::stumps::{StumpsConfig, StumpsGenerator};
use lsiq_core::params::{FaultCoverage, ModelParams, Yield};
use lsiq_core::reject::field_reject_rate;
use lsiq_exec::{
    ConfigError, ExecutionContext, MetricsMode, RunConfig, ScanPlan, TestMode, SCAN_CHAINS_VAR,
};
use lsiq_fault::coverage::CoverageCurve;
use lsiq_fault::dictionary::FaultDictionary;
use lsiq_fault::universe::FaultUniverse;
use lsiq_manufacturing::experiment::RejectExperiment;
use lsiq_manufacturing::lot::ModelLotConfig;
use lsiq_manufacturing::pipeline::ParallelLotRunner;
use lsiq_manufacturing::tester::TestRecord;
use lsiq_netlist::circuit::Circuit;
use lsiq_netlist::library::{lsi_class, sequential_lsi_class, LsiClassConfig};
use lsiq_netlist::scan::{insert_scan, ScanCircuit};
use lsiq_sim::cache::GoodMachineCache;
use lsiq_tpg::suite::{TestSuite, TestSuiteBuilder};

/// The seed of the reference test programme (and, by default, of the
/// Table 1 lot): the paper's publication year, as in every earlier
/// reproduction binary.
pub const PROGRAMME_SEED: u64 = 1981;

/// The self-test geometry of a BIST-mode production line: 64-pattern
/// sessions (one packed simulation block per readout) into a 16-bit MISR —
/// the [`BistPlan`] default.
const LINE_BIST_PLAN: BistPlan = BistPlan {
    session_len: 64,
    signature_width: 16,
};

/// The ground truth of one production-line pass: lot size, dialled-in
/// yield and `n0`, and whether to build the full-size (25 000-transistor)
/// device or the fast reduced one.
///
/// [`LineSpec::table1`] is the paper's Section 7 experiment: 277 chips at
/// roughly 7 percent yield with `n0 = 8`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineSpec {
    /// Chips in the lot.
    pub chips: usize,
    /// Probability that a chip is fault-free (the paper's `y`).
    pub yield_fraction: f64,
    /// Mean fault count of a defective chip (the paper's `n0`).
    pub n0: f64,
    /// Build the full 25 000-transistor device instead of the reduced one.
    pub full_size: bool,
}

impl LineSpec {
    /// The paper's Section 7 ground truth: 277 chips, `y ≈ 0.07`, `n0 = 8`.
    pub fn table1() -> LineSpec {
        LineSpec {
            chips: 277,
            yield_fraction: 0.07,
            n0: 8.0,
            full_size: false,
        }
    }
}

/// A production-line experiment bundle: the device, its fault universe, the
/// ordered pattern suite, and the tested lot's reject table.
pub struct LineExperiment {
    /// The device under test.
    pub circuit: Circuit,
    /// Size of the uncollapsed fault universe.
    pub universe_size: usize,
    /// The ordered pattern suite applied by the tester.
    pub suite: TestSuite,
    /// Cumulative-coverage curve of the suite.
    pub coverage: CoverageCurve,
    /// The tested lot's cumulative-reject experiment.
    pub experiment: RejectExperiment,
    /// The lot's observed yield.
    pub observed_yield: f64,
    /// The lot's observed mean fault count over defective chips.
    pub observed_n0: f64,
    /// How the lot was observed: per-pattern stored responses, or
    /// per-session BIST signatures (coarser reject table, aliasing
    /// possible).
    pub test_mode: TestMode,
}

/// A configured run: the typed [`RunConfig`] plus the persistent
/// [`ExecutionContext`] worker pool every parallel stage executes on, and
/// the session-wide [`GoodMachineCache`] those stages share — a suite
/// build, a signature sweep and a compaction pass over the same patterns
/// pay for the fault-free simulation once.
pub struct Session {
    config: RunConfig,
    context: ExecutionContext,
    cache: GoodMachineCache,
}

impl Session {
    /// Opens a session: spawns the worker pool sized by `config` and parks
    /// it for the lifetime of the session.
    ///
    /// When the configuration asks for telemetry (`LSIQ_METRICS=json|tree`),
    /// the process-global [`lsiq_obs`] recording mode is raised to match.
    /// The wiring is *raise-only*: a default `Off` session never lowers a
    /// mode another session enabled, so concurrently constructed sessions
    /// (as in the test suites) cannot clobber an enabled recorder.  Emission
    /// remains per-consumer — recording alone never changes any output
    /// stream.
    pub fn new(config: RunConfig) -> Session {
        if config.metrics() != MetricsMode::Off {
            lsiq_obs::set_mode(config.metrics());
        }
        let context = ExecutionContext::from_config(&config);
        Session {
            config,
            context,
            cache: GoodMachineCache::new(),
        }
    }

    /// Opens a session from the `LSIQ_*` environment variables (through the
    /// single parsing site, [`RunConfig::from_env`]), surfacing a
    /// [`ConfigError`] — never a panic — when a knob is set to an invalid
    /// value.
    pub fn from_env() -> Result<Session, ConfigError> {
        Ok(Session::new(RunConfig::from_env()?))
    }

    /// The session's run configuration.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// The session's persistent worker pool.
    pub fn context(&self) -> &ExecutionContext {
        &self.context
    }

    /// The session's shared good-machine cache.  Every chunked
    /// fault-simulation stage the session runs — suite builds, signature
    /// sweeps — deposits and reuses fault-free chunk images here; hand it
    /// to [`TestSuiteBuilder::build_cached`] or
    /// [`reverse_order_compaction_configured`](lsiq_tpg::compaction::reverse_order_compaction_configured)
    /// to join an external stage to the same pool.
    pub fn good_machine_cache(&self) -> &GoodMachineCache {
        &self.cache
    }

    /// A human-readable report of everything the metrics registry has
    /// recorded so far: counters, gauges, histograms, and the hierarchical
    /// span tree with per-node self time.  Empty (headers only) unless a
    /// recording mode was enabled (`LSIQ_METRICS=json|tree`, or
    /// [`lsiq_obs::set_mode`]).  The bench binaries print this to stderr
    /// under `LSIQ_METRICS=tree`; `docs/OBSERVABILITY.md` documents the
    /// metric catalogue and the span-tree semantics.
    pub fn metrics_report(&self) -> String {
        lsiq_obs::report::render_tree(&lsiq_obs::snapshot())
    }

    /// A lot runner bound to the session's pool.
    pub fn lot_runner(&self) -> ParallelLotRunner<'_> {
        ParallelLotRunner::with_context(&self.context)
    }

    /// A suite builder carrying the session's engine choice; pair it with
    /// [`TestSuiteBuilder::build_in`] and [`Session::context`] to fault
    /// simulate on the session's pool.
    pub fn suite_builder(&self) -> TestSuiteBuilder {
        TestSuiteBuilder::default().with_run_config(&self.config)
    }

    /// The exact suite builder of the production-line flow
    /// ([`run_production_line`](Self::run_production_line)): the reference
    /// programme seed, 64-pattern chunks, up to 192 random patterns, no
    /// PODEM top-up — with the session's engine choice resolved for
    /// `circuit` (an `auto` engine picks by gate count,
    /// [`EngineKind::auto_for`](lsiq_exec::EngineKind::auto_for)).
    ///
    /// Exposed so out-of-process services (the `lsiq-serve` artifact store)
    /// can rebuild byte-identical line suites.
    pub fn line_suite_builder(&self, circuit: &Circuit) -> TestSuiteBuilder {
        let mut builder = TestSuiteBuilder {
            seed: PROGRAMME_SEED,
            chunk: 64,
            max_random_patterns: 192,
            target_coverage: 0.95,
            podem_top_up: false,
            ..TestSuiteBuilder::default()
        }
        .with_run_config(&self.config);
        builder.engine = self.config.engine_for_size(circuit.gate_count());
        builder
    }

    /// The circuit every production-line reproduction uses: an LSI-class
    /// composite.  The transistor target is reduced from the paper's 25 000
    /// to keep the harness runtime in seconds; pass `full = true` for the
    /// full-size device.
    pub fn reproduction_circuit(full: bool) -> Circuit {
        let target = if full { 25_000 } else { 10_000 };
        lsi_class(LsiClassConfig {
            target_transistors: target,
            seed: PROGRAMME_SEED,
        })
    }

    /// The sequential reproduction device — the same LSI-class composite
    /// with every pad registered behind a D flip-flop — stitched into
    /// `plan`'s scan chains.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] (named after the `LSIQ_SCAN_CHAINS` knob)
    /// when the plan asks for more chains than the device has flip-flops.
    pub fn scan_reproduction_circuit(
        full: bool,
        plan: ScanPlan,
    ) -> Result<ScanCircuit, ConfigError> {
        let target = if full { 25_000 } else { 10_000 };
        let sequential = sequential_lsi_class(LsiClassConfig {
            target_transistors: target,
            seed: PROGRAMME_SEED,
        });
        insert_scan(&sequential, plan.chains()).map_err(|_| {
            ConfigError::invalid_value(
                SCAN_CHAINS_VAR,
                plan.chains().to_string(),
                "a chain count not exceeding the device's flip-flop count",
            )
        })
    }

    /// The device a session's experiments actually run on: the combinational
    /// reproduction circuit or — when the session configures scan chains —
    /// the capture-mode test view of the scan-inserted sequential device.
    ///
    /// The test view shares the scan circuit's gate-id space, replaces
    /// every scan cell by a pseudo primary input (loaded through the chains)
    /// and exposes each cell's capture value as a pseudo primary output (as
    /// observed by the scan-out shift), so one pattern is one full
    /// scan-in/capture/scan-out cycle and every combinational engine — and
    /// the whole BIST stack — applies unchanged.  Its fault universe covers
    /// the scan path itself: the per-cell shift/capture multiplexers and
    /// the scan-enable fanout.
    fn device_under_test(&self, full: bool) -> Result<Circuit, ConfigError> {
        match self.config.scan() {
            None => Ok(Session::reproduction_circuit(full)),
            Some(plan) => Ok(Session::scan_reproduction_circuit(full, plan)?
                .test_view()
                .clone()),
        }
    }

    /// Runs the standard Section 7 style line experiment: an LSI-class
    /// device, a random pattern suite evaluated on the session's engine and
    /// pool, and a lot drawn from the statistical model with `spec`'s ground
    /// truth, seeded by the session's base seed.  Generation, wafer test and
    /// the streamed reject tabulation all execute on the session's worker
    /// pool; results are byte-identical at any worker count, so the
    /// configuration only changes wall-clock time.
    ///
    /// With scan chains configured ([`RunConfig::with_scan`] or the
    /// `LSIQ_SCAN_CHAINS` knob) the line tests the scan-inserted sequential
    /// device through its capture-mode test view instead — a full-scan flow
    /// whose fault universe includes the scan path itself.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the configured scan plan does not fit
    /// the device.
    pub fn run_production_line(&self, spec: &LineSpec) -> Result<LineExperiment, ConfigError> {
        self.run_line(spec, self.config.base_seed())
    }

    /// Reproduces the paper's Table 1 run: the [`LineSpec::table1`] ground
    /// truth with the historical seed (1981) unless the session configures
    /// an explicit one.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the configured scan plan does not fit
    /// the device.
    pub fn reproduce_table1(&self) -> Result<LineExperiment, ConfigError> {
        self.run_line(&LineSpec::table1(), self.config.seed_or(PROGRAMME_SEED))
    }

    fn run_line(&self, spec: &LineSpec, lot_seed: u64) -> Result<LineExperiment, ConfigError> {
        let circuit = self.device_under_test(spec.full_size)?;
        let universe = FaultUniverse::full(&circuit);
        let suite = self.line_suite_builder(&circuit).build_cached(
            Some(&self.context),
            Some(&self.cache),
            &circuit,
            &universe,
        );
        let coverage = CoverageCurve::from_fault_list(&suite.fault_list, suite.patterns.len());
        let runner = self.lot_runner();
        let lot = runner.generate_model_lot(&ModelLotConfig {
            chips: spec.chips,
            yield_fraction: spec.yield_fraction,
            n0: spec.n0,
            fault_universe_size: universe.len(),
            seed: lot_seed,
        });
        let test_mode = self.config.test_mode();
        let records: Vec<TestRecord> = match test_mode {
            TestMode::Stored => {
                let dictionary = FaultDictionary::from_fault_list(&suite.fault_list);
                runner.test_lot(&dictionary, &lot)
            }
            TestMode::Bist => {
                // The self-tested lot is observed only at signature
                // readouts: build the per-fault signature dictionary over
                // the same ordered pattern suite, test by signature
                // compare, and coarsen each first failing *session* to the
                // pattern index at which it is read out.  The suite build
                // above already deposited the good machine of these very
                // patterns in the session cache, so this pass replays it.
                let signatures = SignatureDictionary::build_sweep_cached(
                    &self.context,
                    &circuit,
                    &universe,
                    &suite.patterns,
                    LINE_BIST_PLAN.session_len,
                    &[LINE_BIST_PLAN.signature_width],
                    &[suite.patterns.len()],
                    self.config.lanes(),
                    Some(&self.cache),
                )
                .swap_remove(0)
                .swap_remove(0);
                runner
                    .test_lot_bist(&signatures, &lot)
                    .iter()
                    .map(|record| {
                        record.to_test_record(LINE_BIST_PLAN.session_len, suite.patterns.len())
                    })
                    .collect()
            }
        };
        let checkpoints: Vec<usize> = (1..=coverage.pattern_count()).collect();
        let experiment = runner.experiment(&records, &coverage, &checkpoints);
        Ok(LineExperiment {
            universe_size: universe.len(),
            suite,
            coverage,
            experiment,
            observed_yield: lot.observed_yield(),
            observed_n0: lot.observed_n0(),
            circuit,
            test_mode,
        })
    }

    /// Sweeps self-test length × signature width on the reproduction device
    /// and tabulates the paper's defect level (eq. 8) with and without the
    /// aliasing correction — the quality cost of compacting responses into
    /// a `k`-bit signature instead of storing them.
    ///
    /// Patterns come from a STUMPS-style generator seeded by the session
    /// (the `LSIQ_SEED` knob, defaulting to the historical 1981); per-fault
    /// signatures are computed on the session's worker pool in exactly one
    /// fault-simulation pass at the maximum length, shared across every
    /// test length *and* signature width of the grid
    /// ([`SignatureDictionary::build_sweep_in`]).
    ///
    /// With scan chains configured the sweep runs the full-scan BIST flow
    /// on the sequential reproduction device's capture-mode test view, scan
    /// path included — see [`run_production_line`](Self::run_production_line).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the spec's model parameters or grid
    /// are invalid (empty lengths or widths, unsupported MISR width, zero
    /// session length, a STUMPS geometry the register cannot feed) or the
    /// configured scan plan does not fit the device.
    pub fn run_bist_sweep(&self, spec: &BistSweepSpec) -> Result<BistSweep, ConfigError> {
        let circuit = self.device_under_test(spec.full_size)?;
        self.run_bist_sweep_on(&circuit, spec)
    }

    /// [`run_bist_sweep`](Self::run_bist_sweep) on an explicit device —
    /// used by the tests to sweep small library circuits quickly.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the spec's model parameters or grid
    /// are invalid — see [`run_bist_sweep`](Self::run_bist_sweep).
    pub fn run_bist_sweep_on(
        &self,
        circuit: &Circuit,
        spec: &BistSweepSpec,
    ) -> Result<BistSweep, ConfigError> {
        let yield_fraction = Yield::new(spec.yield_fraction).map_err(|_| {
            ConfigError::invalid_value(
                "BistSweepSpec::yield_fraction",
                spec.yield_fraction.to_string(),
                "a yield fraction in [0, 1]",
            )
        })?;
        let params = ModelParams::new(yield_fraction, spec.n0).map_err(|_| {
            ConfigError::invalid_value(
                "BistSweepSpec::n0",
                spec.n0.to_string(),
                "a mean fault count of at least 1",
            )
        })?;
        if spec.session_len == 0 {
            return Err(ConfigError::invalid_value(
                "BistSweepSpec::session_len",
                "0",
                "a session of at least 1 pattern",
            ));
        }
        if spec.signature_widths.is_empty() {
            return Err(ConfigError::invalid_value(
                "BistSweepSpec::signature_widths",
                "(empty)",
                "at least one signature width",
            ));
        }
        for &width in &spec.signature_widths {
            Misr::try_new(width)?;
        }
        let max_length = spec.test_lengths.iter().copied().max().ok_or_else(|| {
            ConfigError::invalid_value(
                "BistSweepSpec::test_lengths",
                "(empty)",
                "at least one test length",
            )
        })?;
        let universe = FaultUniverse::full(circuit);
        let generator = StumpsGenerator::try_new(&StumpsConfig {
            width: circuit.primary_inputs().len(),
            channels: spec.channels,
            degree: 64,
            seed: self.config.seed_or(PROGRAMME_SEED),
        })?;
        let all_patterns = generator.generate(max_length);
        let defect_level = |coverage: f64| {
            field_reject_rate(
                &params,
                FaultCoverage::new(coverage.clamp(0.0, 1.0)).expect("clamped into range"),
            )
            .value()
        };
        // One fault-simulation pass at the maximum length serves the whole
        // grid: shorter lengths are derived from recorded first-failure
        // patterns and partial-session snapshots, byte-identical to a fresh
        // per-length build.  The session's lane width and good-machine
        // cache apply; a repeated sweep over the same patterns replays the
        // fault-free simulation from the cache.
        let grid = SignatureDictionary::build_sweep_cached(
            &self.context,
            circuit,
            &universe,
            &all_patterns,
            spec.session_len,
            &spec.signature_widths,
            &spec.test_lengths,
            self.config.lanes(),
            Some(&self.cache),
        );
        let mut rows = Vec::with_capacity(spec.test_lengths.len() * spec.signature_widths.len());
        for (dictionaries, &test_length) in grid.iter().zip(&spec.test_lengths) {
            for dictionary in dictionaries {
                let report = AliasingReport::from_dictionary(dictionary);
                rows.push(BistSweepRow {
                    test_length,
                    signature_width: dictionary.signature_width(),
                    sessions: dictionary.sessions(),
                    raw_coverage: report.raw_coverage(),
                    effective_coverage: report.effective_coverage(),
                    aliased: report.aliased,
                    aliasing_fraction: report.aliasing_fraction(),
                    estimated_aliasing_fraction: report.estimated_aliasing_fraction(),
                    defect_level_raw: defect_level(report.raw_coverage()),
                    defect_level_effective: defect_level(report.effective_coverage()),
                });
            }
        }
        Ok(BistSweep {
            universe_size: universe.len(),
            session_len: spec.session_len,
            rows,
        })
    }
}

/// The grid and model parameters of a [`Session::run_bist_sweep`].
#[derive(Debug, Clone, PartialEq)]
pub struct BistSweepSpec {
    /// Self-test lengths (applied pattern counts) to sweep.
    pub test_lengths: Vec<usize>,
    /// MISR signature widths `k` to sweep (supported widths only; see
    /// [`SUPPORTED_DEGREES`](lsiq_bist::lfsr::SUPPORTED_DEGREES)).
    pub signature_widths: Vec<u32>,
    /// Patterns per signature readout.
    pub session_len: usize,
    /// STUMPS scan channels feeding the device inputs.
    pub channels: usize,
    /// The paper's `y` for the defect-level model.
    pub yield_fraction: f64,
    /// The paper's `n0` for the defect-level model.
    pub n0: f64,
    /// Sweep the full 25 000-transistor device instead of the reduced one.
    pub full_size: bool,
}

impl BistSweepSpec {
    /// The reference sweep of the `bist_sweep` harness binary: test lengths
    /// 64–256, signature widths 4/8/16, 64-pattern sessions, the paper's
    /// Section 7 ground truth (`y ≈ 0.07`, `n0 = 8`) on the reduced device.
    pub fn reference() -> BistSweepSpec {
        BistSweepSpec {
            test_lengths: vec![64, 128, 192, 256],
            signature_widths: vec![4, 8, 16],
            session_len: 64,
            channels: 8,
            yield_fraction: 0.07,
            n0: 8.0,
            full_size: false,
        }
    }
}

/// One cell of a BIST sweep: a `(test length, signature width)` pair with
/// its coverages and defect levels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BistSweepRow {
    /// Applied pattern count.
    pub test_length: usize,
    /// MISR width `k`.
    pub signature_width: u32,
    /// Signature readouts performed.
    pub sessions: usize,
    /// Fault coverage before compaction (`detected / N`).
    pub raw_coverage: f64,
    /// Aliasing-corrected coverage (`(detected − aliased) / N`); never above
    /// [`raw_coverage`](Self::raw_coverage).
    pub effective_coverage: f64,
    /// Detected-but-masked fault count.
    pub aliased: usize,
    /// Observed per-detected-fault aliasing probability.
    pub aliasing_fraction: f64,
    /// The classical `2^−k` estimate of that probability.
    pub estimated_aliasing_fraction: f64,
    /// Defect level (eq. 8) at the raw coverage — what a stored-pattern
    /// tester of the same length would ship.
    pub defect_level_raw: f64,
    /// Defect level at the effective coverage — what the self-test actually
    /// ships.  At least [`defect_level_raw`](Self::defect_level_raw).
    pub defect_level_effective: f64,
}

/// The result of a [`Session::run_bist_sweep`].
#[derive(Debug, Clone, PartialEq)]
pub struct BistSweep {
    /// Size of the swept (uncollapsed) fault universe.
    pub universe_size: usize,
    /// Patterns per signature readout.
    pub session_len: usize,
    /// One row per `(test length, signature width)` grid cell, lengths
    /// outermost, widths in spec order within a length.
    pub rows: Vec<BistSweepRow>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsiq_exec::EngineKind;
    use lsiq_netlist::library;

    #[test]
    fn session_bundles_config_and_pool() {
        let session = Session::new(
            RunConfig::default()
                .with_engine(EngineKind::Ppsfp)
                .with_workers(2)
                .with_base_seed(7),
        );
        assert_eq!(session.config().engine(), EngineKind::Ppsfp);
        assert_eq!(session.context().workers(), 2);
        assert_eq!(session.suite_builder().engine, EngineKind::Ppsfp);
        assert_eq!(session.lot_runner().threads_for(100_000), 2);
    }

    #[test]
    fn session_cache_warms_across_stages_and_lanes_reach_the_builder() {
        use lsiq_exec::LaneWidth;

        let session = Session::new(
            RunConfig::default()
                .with_workers(2)
                .with_lanes(LaneWidth::X4),
        );
        assert_eq!(session.suite_builder().lanes, LaneWidth::X4);

        let circuit = library::alu4();
        let spec = BistSweepSpec {
            test_lengths: vec![64, 128],
            signature_widths: vec![8, 16],
            session_len: 32,
            channels: 4,
            ..BistSweepSpec::reference()
        };
        let first = session
            .run_bist_sweep_on(&circuit, &spec)
            .expect("valid spec");
        let misses = session.good_machine_cache().misses();
        let hits = session.good_machine_cache().hits();
        assert!(misses > 0, "first sweep populates the cache");
        // The second sweep runs the same patterns: the fault-free
        // simulation replays from the session cache, the rows are
        // byte-identical.
        let second = session
            .run_bist_sweep_on(&circuit, &spec)
            .expect("valid spec");
        assert_eq!(first, second);
        assert!(session.good_machine_cache().hits() > hits);
        assert_eq!(session.good_machine_cache().misses(), misses);
    }

    #[test]
    fn from_env_without_knobs_is_the_default_config() {
        // The test environment sets no LSIQ_* variables.
        let session = Session::from_env().expect("clean environment");
        assert_eq!(session.config().engine(), EngineKind::Parallel);
        assert_eq!(session.config().base_seed(), lsiq_exec::DEFAULT_BASE_SEED);
    }

    #[test]
    fn bist_sweep_corrects_coverage_downward_and_converges_with_width() {
        let session = Session::new(RunConfig::default().with_workers(2));
        let circuit = lsiq_netlist::library::alu4();
        // One session per test (session_len >= length): each detected fault
        // aliases with probability ~2^-k, so the k = 4 column carries a
        // visible penalty and the k = 16 column essentially none.
        let spec = BistSweepSpec {
            test_lengths: vec![32, 64],
            signature_widths: vec![4, 8, 16],
            session_len: 64,
            channels: 4,
            ..BistSweepSpec::reference()
        };
        let sweep = session
            .run_bist_sweep_on(&circuit, &spec)
            .expect("valid sweep spec");
        assert_eq!(sweep.rows.len(), 6);
        assert_eq!(sweep.session_len, 64);
        for row in &sweep.rows {
            assert!(
                row.effective_coverage <= row.raw_coverage + 1e-15,
                "effective must not exceed raw: {row:?}"
            );
            assert!(
                row.defect_level_effective >= row.defect_level_raw - 1e-15,
                "aliasing can only worsen the defect level: {row:?}"
            );
            assert_eq!(
                row.aliased,
                ((row.raw_coverage - row.effective_coverage) * sweep.universe_size as f64).round()
                    as usize
            );
        }
        // Convergence with signature width: per length, the narrow register
        // pays a real aliasing penalty and the wide one (weakly) less.
        for cells in sweep.rows.chunks(3) {
            let penalty = |row: &BistSweepRow| row.raw_coverage - row.effective_coverage;
            assert!(
                cells[0].aliased > 0,
                "k = 4 single-session sweep should alias something: {:?}",
                cells[0]
            );
            assert!(penalty(&cells[2]) <= penalty(&cells[0]) + 1e-15);
            assert!(
                cells[2].defect_level_effective <= cells[0].defect_level_effective + 1e-15,
                "widening the signature must not worsen shipped quality"
            );
        }
    }

    #[test]
    fn bist_mode_line_experiment_is_session_quantised() {
        let stored = Session::new(RunConfig::default().with_workers(2));
        let bist = Session::new(
            RunConfig::default()
                .with_workers(2)
                .with_test_mode(TestMode::Bist),
        );
        let spec = LineSpec {
            chips: 150,
            yield_fraction: 0.2,
            n0: 4.0,
            full_size: false,
        };
        let stored_line = stored
            .run_production_line(&spec)
            .expect("no scan configured");
        let bist_line = bist.run_production_line(&spec).expect("no scan configured");
        assert_eq!(stored_line.test_mode, TestMode::Stored);
        assert_eq!(bist_line.test_mode, TestMode::Bist);
        // Same device, same patterns, same lot — only the observable
        // changes.
        assert_eq!(stored_line.universe_size, bist_line.universe_size);
        assert_eq!(
            stored_line.suite.patterns.as_slice(),
            bist_line.suite.patterns.as_slice()
        );
        assert_eq!(stored_line.observed_yield, bist_line.observed_yield);
        // A BIST tester can only reject at session boundaries, so by any
        // checkpoint it has rejected at most as many chips as the
        // stored-pattern tester.
        for (stored_row, bist_row) in stored_line
            .experiment
            .rows()
            .iter()
            .zip(bist_line.experiment.rows())
        {
            assert!(bist_row.chips_failed <= stored_row.chips_failed);
        }
        // By the end of the test both testers agree up to aliasing, which
        // the 16-bit line signature makes negligible but not impossible.
        let last = |line: &LineExperiment| line.experiment.rows().last().unwrap().chips_failed;
        assert!(last(&bist_line) <= last(&stored_line));
        assert!(last(&bist_line) + 3 >= last(&stored_line));
    }

    #[test]
    fn bist_sweep_rejects_invalid_specs_without_panicking() {
        let session = Session::new(RunConfig::default().with_workers(1));
        let circuit = library::c17();
        let reference = BistSweepSpec::reference();

        let bad_width = BistSweepSpec {
            signature_widths: vec![10],
            ..reference.clone()
        };
        let error = session
            .run_bist_sweep_on(&circuit, &bad_width)
            .expect_err("unsupported MISR width");
        assert_eq!(error.value(), "10");

        let no_lengths = BistSweepSpec {
            test_lengths: vec![],
            ..reference.clone()
        };
        let error = session
            .run_bist_sweep_on(&circuit, &no_lengths)
            .expect_err("empty length grid");
        assert_eq!(error.variable(), "BistSweepSpec::test_lengths");

        let zero_session = BistSweepSpec {
            session_len: 0,
            ..reference.clone()
        };
        let error = session
            .run_bist_sweep_on(&circuit, &zero_session)
            .expect_err("zero-length session");
        assert_eq!(error.variable(), "BistSweepSpec::session_len");

        let bad_yield = BistSweepSpec {
            yield_fraction: 1.5,
            ..reference
        };
        let error = session
            .run_bist_sweep_on(&circuit, &bad_yield)
            .expect_err("impossible yield");
        assert_eq!(error.variable(), "BistSweepSpec::yield_fraction");
    }

    #[test]
    fn scan_session_runs_full_scan_bist_on_the_sequential_device() {
        let plan = ScanPlan::new(4).expect("valid plan");
        // The sequential reproduction device carries the acceptance
        // floor of 32 flip-flops.
        let scan = Session::scan_reproduction_circuit(false, plan).expect("plan fits");
        assert!(scan.cell_count() >= 32, "{} cells", scan.cell_count());
        assert_eq!(scan.chain_count(), 4);

        let session = Session::new(RunConfig::default().with_workers(2).with_scan(Some(plan)));
        let spec = BistSweepSpec {
            test_lengths: vec![32],
            signature_widths: vec![16],
            session_len: 32,
            ..BistSweepSpec::reference()
        };
        let sweep = session.run_bist_sweep(&spec).expect("scan plan fits");
        assert_eq!(sweep.rows.len(), 1);
        let row = &sweep.rows[0];
        assert!(row.raw_coverage > 0.0 && row.raw_coverage <= 1.0);
        assert!(row.effective_coverage <= row.raw_coverage + 1e-15);
        assert!(row.defect_level_effective >= row.defect_level_raw - 1e-15);
        // The swept universe is the test view's: scan-path gates included,
        // so it is strictly larger than the combinational device's.
        let combinational = FaultUniverse::full(&Session::reproduction_circuit(false));
        assert!(sweep.universe_size > combinational.len());

        // A plan with more chains than flip-flops surfaces as a typed
        // error named after the knob it arrives through — never a panic.
        let oversized = Session::new(
            RunConfig::default().with_scan(Some(ScanPlan::new(4096).expect("in bounds"))),
        );
        let error = oversized
            .run_bist_sweep(&spec)
            .expect_err("more chains than cells");
        assert_eq!(error.variable(), SCAN_CHAINS_VAR);
        assert_eq!(error.value(), "4096");
    }

    #[test]
    fn table1_spec_matches_the_paper() {
        let spec = LineSpec::table1();
        assert_eq!(spec.chips, 277);
        assert!((spec.yield_fraction - 0.07).abs() < 1e-12);
        assert!((spec.n0 - 8.0).abs() < 1e-12);
        assert!(!spec.full_size);
    }
}
