//! The one-call entry point of the reproduction: a typed [`Session`]
//! bundling a [`RunConfig`] with a persistent [`ExecutionContext`].
//!
//! The paper's experiment is one coherent campaign: build an ordered test
//! programme (Section 5), wafer-test a lot of chips recording each chip's
//! first failing pattern (Section 7), and tabulate the cumulative-reject
//! table the model is fitted to (Table 1).  A `Session` owns everything
//! those stages share — the engine choice, the worker pool, the base seed —
//! so the bench binaries, the `production_line` example and the ablation
//! tools all configure a run in exactly one place and reuse the same parked
//! worker threads end to end:
//!
//! ```
//! use lsi_quality::exec::{EngineKind, RunConfig};
//! use lsi_quality::Session;
//!
//! let session = Session::new(
//!     RunConfig::default()
//!         .with_engine(EngineKind::Deductive)
//!         .with_workers(2),
//! );
//! assert_eq!(session.config().engine(), EngineKind::Deductive);
//!
//! // The session's pool serves any fork-join workload…
//! let mut cubes = vec![0u64; 4];
//! session.context().scope(|scope| {
//!     for (value, slot) in cubes.iter_mut().enumerate() {
//!         scope.spawn(move || *slot = (value * value * value) as u64);
//!     }
//! });
//! assert_eq!(cubes, [0, 1, 8, 27]);
//! // …and its lot runner shards production lots on the same workers.
//! assert!(session.lot_runner().threads_for(100_000) >= 1);
//! ```
//!
//! [`Session::from_env`] is the environment-compatibility layer: it builds
//! the config from the `LSIQ_*` variables through the single parsing site
//! ([`RunConfig::from_env`]) and surfaces a [`ConfigError`] instead of a
//! panic, so binaries can exit gracefully on a bad knob.

use lsiq_exec::{ConfigError, ExecutionContext, RunConfig};
use lsiq_fault::coverage::CoverageCurve;
use lsiq_fault::dictionary::FaultDictionary;
use lsiq_fault::universe::FaultUniverse;
use lsiq_manufacturing::experiment::RejectExperiment;
use lsiq_manufacturing::lot::ModelLotConfig;
use lsiq_manufacturing::pipeline::ParallelLotRunner;
use lsiq_netlist::circuit::Circuit;
use lsiq_netlist::library::{lsi_class, LsiClassConfig};
use lsiq_tpg::suite::{TestSuite, TestSuiteBuilder};

/// The seed of the reference test programme (and, by default, of the
/// Table 1 lot): the paper's publication year, as in every earlier
/// reproduction binary.
const PROGRAMME_SEED: u64 = 1981;

/// The ground truth of one production-line pass: lot size, dialled-in
/// yield and `n0`, and whether to build the full-size (25 000-transistor)
/// device or the fast reduced one.
///
/// [`LineSpec::table1`] is the paper's Section 7 experiment: 277 chips at
/// roughly 7 percent yield with `n0 = 8`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineSpec {
    /// Chips in the lot.
    pub chips: usize,
    /// Probability that a chip is fault-free (the paper's `y`).
    pub yield_fraction: f64,
    /// Mean fault count of a defective chip (the paper's `n0`).
    pub n0: f64,
    /// Build the full 25 000-transistor device instead of the reduced one.
    pub full_size: bool,
}

impl LineSpec {
    /// The paper's Section 7 ground truth: 277 chips, `y ≈ 0.07`, `n0 = 8`.
    pub fn table1() -> LineSpec {
        LineSpec {
            chips: 277,
            yield_fraction: 0.07,
            n0: 8.0,
            full_size: false,
        }
    }
}

/// A production-line experiment bundle: the device, its fault universe, the
/// ordered pattern suite, and the tested lot's reject table.
pub struct LineExperiment {
    /// The device under test.
    pub circuit: Circuit,
    /// Size of the uncollapsed fault universe.
    pub universe_size: usize,
    /// The ordered pattern suite applied by the tester.
    pub suite: TestSuite,
    /// Cumulative-coverage curve of the suite.
    pub coverage: CoverageCurve,
    /// The tested lot's cumulative-reject experiment.
    pub experiment: RejectExperiment,
    /// The lot's observed yield.
    pub observed_yield: f64,
    /// The lot's observed mean fault count over defective chips.
    pub observed_n0: f64,
}

/// A configured run: the typed [`RunConfig`] plus the persistent
/// [`ExecutionContext`] worker pool every parallel stage executes on.
pub struct Session {
    config: RunConfig,
    context: ExecutionContext,
}

impl Session {
    /// Opens a session: spawns the worker pool sized by `config` and parks
    /// it for the lifetime of the session.
    pub fn new(config: RunConfig) -> Session {
        let context = ExecutionContext::from_config(&config);
        Session { config, context }
    }

    /// Opens a session from the `LSIQ_*` environment variables (through the
    /// single parsing site, [`RunConfig::from_env`]), surfacing a
    /// [`ConfigError`] — never a panic — when a knob is set to an invalid
    /// value.
    pub fn from_env() -> Result<Session, ConfigError> {
        Ok(Session::new(RunConfig::from_env()?))
    }

    /// The session's run configuration.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// The session's persistent worker pool.
    pub fn context(&self) -> &ExecutionContext {
        &self.context
    }

    /// A lot runner bound to the session's pool.
    pub fn lot_runner(&self) -> ParallelLotRunner<'_> {
        ParallelLotRunner::with_context(&self.context)
    }

    /// A suite builder carrying the session's engine choice; pair it with
    /// [`TestSuiteBuilder::build_in`] and [`Session::context`] to fault
    /// simulate on the session's pool.
    pub fn suite_builder(&self) -> TestSuiteBuilder {
        TestSuiteBuilder::default().with_run_config(&self.config)
    }

    /// The circuit every production-line reproduction uses: an LSI-class
    /// composite.  The transistor target is reduced from the paper's 25 000
    /// to keep the harness runtime in seconds; pass `full = true` for the
    /// full-size device.
    pub fn reproduction_circuit(full: bool) -> Circuit {
        let target = if full { 25_000 } else { 10_000 };
        lsi_class(LsiClassConfig {
            target_transistors: target,
            seed: PROGRAMME_SEED,
        })
    }

    /// Runs the standard Section 7 style line experiment: an LSI-class
    /// device, a random pattern suite evaluated on the session's engine and
    /// pool, and a lot drawn from the statistical model with `spec`'s ground
    /// truth, seeded by the session's base seed.  Generation, wafer test and
    /// the streamed reject tabulation all execute on the session's worker
    /// pool; results are byte-identical at any worker count, so the
    /// configuration only changes wall-clock time.
    pub fn run_production_line(&self, spec: &LineSpec) -> LineExperiment {
        self.run_line(spec, self.config.base_seed())
    }

    /// Reproduces the paper's Table 1 run: the [`LineSpec::table1`] ground
    /// truth with the historical seed (1981) unless the session configures
    /// an explicit one.
    pub fn reproduce_table1(&self) -> LineExperiment {
        self.run_line(&LineSpec::table1(), self.config.seed_or(PROGRAMME_SEED))
    }

    fn run_line(&self, spec: &LineSpec, lot_seed: u64) -> LineExperiment {
        let circuit = Session::reproduction_circuit(spec.full_size);
        let universe = FaultUniverse::full(&circuit);
        let suite = TestSuiteBuilder {
            seed: PROGRAMME_SEED,
            chunk: 64,
            max_random_patterns: 192,
            target_coverage: 0.95,
            podem_top_up: false,
            ..TestSuiteBuilder::default()
        }
        .with_run_config(&self.config)
        .build_in(&self.context, &circuit, &universe);
        let coverage = CoverageCurve::from_fault_list(&suite.fault_list, suite.patterns.len());
        let dictionary = FaultDictionary::from_fault_list(&suite.fault_list);
        let runner = self.lot_runner();
        let lot = runner.generate_model_lot(&ModelLotConfig {
            chips: spec.chips,
            yield_fraction: spec.yield_fraction,
            n0: spec.n0,
            fault_universe_size: universe.len(),
            seed: lot_seed,
        });
        let records = runner.test_lot(&dictionary, &lot);
        let checkpoints: Vec<usize> = (1..=coverage.pattern_count()).collect();
        let experiment = runner.experiment(&records, &coverage, &checkpoints);
        LineExperiment {
            universe_size: universe.len(),
            suite,
            coverage,
            experiment,
            observed_yield: lot.observed_yield(),
            observed_n0: lot.observed_n0(),
            circuit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsiq_exec::EngineKind;

    #[test]
    fn session_bundles_config_and_pool() {
        let session = Session::new(
            RunConfig::default()
                .with_engine(EngineKind::Ppsfp)
                .with_workers(2)
                .with_base_seed(7),
        );
        assert_eq!(session.config().engine(), EngineKind::Ppsfp);
        assert_eq!(session.context().workers(), 2);
        assert_eq!(session.suite_builder().engine, EngineKind::Ppsfp);
        assert_eq!(session.lot_runner().threads_for(100_000), 2);
    }

    #[test]
    fn from_env_without_knobs_is_the_default_config() {
        // The test environment sets no LSIQ_* variables.
        let session = Session::from_env().expect("clean environment");
        assert_eq!(session.config().engine(), EngineKind::Parallel);
        assert_eq!(session.config().base_seed(), lsiq_exec::DEFAULT_BASE_SEED);
    }

    #[test]
    fn table1_spec_matches_the_paper() {
        let spec = LineSpec::table1();
        assert_eq!(spec.chips, 277);
        assert!((spec.yield_fraction - 0.07).abs() < 1e-12);
        assert!((spec.n0 - 8.0).abs() < 1e-12);
        assert!(!spec.full_size);
    }
}
